#include "sim/sharded_sim.hpp"

#include <chrono>
#include <thread>

namespace espice {

std::vector<ComplexEvent> partitioned_serial_golden(
    const StreamEngineConfig& config, std::span<const Event> events) {
  ESPICE_REQUIRE(!config.adaptive.has_value(),
                 "the serial golden is defined for deterministic mode");
  config.validate();
  std::vector<std::vector<Event>> substreams(config.shards);
  for (const Event& e : events) {
    const std::uint64_t key =
        config.key_of ? config.key_of(e) : static_cast<std::uint64_t>(e.type);
    substreams[StreamEngine::shard_index(key, config.shards)].push_back(e);
  }
  const Matcher matcher(config.query.pattern, config.query.selection,
                        config.query.consumption,
                        config.query.max_matches_per_window);
  // Same fallback as the engine's deterministic shards.
  double predicted_ws = config.predicted_ws;
  if (predicted_ws <= 0.0) {
    predicted_ws = static_cast<double>(config.query.window.span_events);
  }
  std::vector<std::vector<ComplexEvent>> per_shard(config.shards);
  for (std::size_t s = 0; s < config.shards; ++s) {
    std::unique_ptr<Shedder> shedder =
        config.shedder_factory ? config.shedder_factory(s) : nullptr;
    run_pipeline(substreams[s], config.query.window, matcher, shedder.get(),
                 predicted_ws,
                 [&](const WindowView&, const std::vector<ComplexEvent>& ms) {
                   per_shard[s].insert(per_shard[s].end(), ms.begin(),
                                       ms.end());
                 });
  }
  return StreamEngine::merge_matches(std::move(per_shard));
}

ShardedSimulator::ShardedSimulator(ShardedSimConfig config)
    : config_(std::move(config)) {
  config_.engine.validate();
  ESPICE_REQUIRE(config_.replay_speed >= 0.0,
                 "replay speed must be non-negative");
}

ShardedSimResult ShardedSimulator::run(std::span<const Event> events,
                                       double rate) {
  return run(events, std::vector<RatePhase>{{events.size(), rate}});
}

ShardedSimResult ShardedSimulator::run(std::span<const Event> events,
                                       const std::vector<RatePhase>& phases) {
  const std::vector<double> arrival_ts =
      arrival_schedule(events.size(), phases);

  ShardedSimResult result;
  StreamEngine engine(config_.engine);
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (config_.replay_speed > 0.0) {
      // Pace the router: virtual arrival t maps to wall t / speed.  Spin
      // with yields -- sleep granularity is far coarser than event gaps.
      const double due = arrival_ts[i] / config_.replay_speed;
      while (std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           t0)
                 .count() < due) {
        std::this_thread::yield();
      }
    }
    engine.push(events[i]);
  }
  result.report = engine.finish();
  if (!events.empty()) {
    result.offered_duration = arrival_ts.back();
    result.offered_rate = result.offered_duration > 0.0
                              ? static_cast<double>(events.size()) /
                                    result.offered_duration
                              : 0.0;
  }
  return result;
}

}  // namespace espice
