#include "sim/sharded_sim.hpp"

#include <chrono>
#include <thread>

namespace espice {

namespace {

/// Hash-partitions `events` with the engine's fixed partitioner.
std::vector<std::vector<Event>> partition_substreams(
    std::size_t shards, const std::function<std::uint64_t(const Event&)>& key_of,
    std::span<const Event> events) {
  std::vector<std::vector<Event>> substreams(shards);
  for (const Event& e : events) {
    const std::uint64_t key =
        key_of ? key_of(e) : static_cast<std::uint64_t>(e.type);
    substreams[StreamEngine::shard_index(key, shards)].push_back(e);
  }
  return substreams;
}

/// One query's canonical golden over pre-partitioned substreams.
std::vector<ComplexEvent> one_query_golden(
    const EngineQuery& q, const std::vector<std::vector<Event>>& substreams) {
  q.query.pattern.validate();
  q.query.window.validate();
  const Matcher matcher(q.query.pattern, q.query.selection, q.query.consumption,
                        q.query.max_matches_per_window);
  // Same fallback as the engine's deterministic shards.
  double predicted_ws = q.predicted_ws;
  if (predicted_ws <= 0.0) {
    predicted_ws = static_cast<double>(q.query.window.span_events);
  }
  std::vector<std::vector<ComplexEvent>> per_shard(substreams.size());
  for (std::size_t s = 0; s < substreams.size(); ++s) {
    std::unique_ptr<Shedder> shedder =
        q.shedder_factory ? q.shedder_factory(s) : nullptr;
    run_pipeline(substreams[s], q.query.window, matcher, shedder.get(),
                 predicted_ws,
                 [&](const WindowView&, const std::vector<ComplexEvent>& ms) {
                   per_shard[s].insert(per_shard[s].end(), ms.begin(),
                                       ms.end());
                 });
  }
  return StreamEngine::merge_matches(std::move(per_shard));
}

}  // namespace

std::vector<ComplexEvent> partitioned_serial_golden(
    const StreamEngineConfig& config, std::span<const Event> events) {
  ESPICE_REQUIRE(!config.adaptive.has_value(),
                 "the serial golden is defined for deterministic mode");
  config.validate();
  EngineQuery q;
  q.query = config.query;
  q.shedder_factory = config.shedder_factory;
  q.predicted_ws = config.predicted_ws;
  return one_query_golden(
      q, partition_substreams(config.shards, config.key_of, events));
}

std::vector<std::vector<ComplexEvent>> per_query_serial_goldens(
    std::size_t shards, const std::function<std::uint64_t(const Event&)>& key_of,
    std::span<const EngineQuery> queries, std::span<const Event> events) {
  ESPICE_REQUIRE(shards > 0, "need at least one shard");
  const auto substreams = partition_substreams(shards, key_of, events);
  std::vector<std::vector<ComplexEvent>> goldens;
  goldens.reserve(queries.size());
  for (const EngineQuery& q : queries) {
    goldens.push_back(one_query_golden(q, substreams));
  }
  return goldens;
}

ShardedSimulator::ShardedSimulator(ShardedSimConfig config)
    : config_(std::move(config)) {
  config_.engine.validate();
  ESPICE_REQUIRE(config_.replay_speed >= 0.0,
                 "replay speed must be non-negative");
  ESPICE_REQUIRE(config_.batch_size == 0 || config_.replay_speed == 0.0,
                 "batched replay is unpaced (throughput mode only)");
}

ShardedSimResult ShardedSimulator::run(std::span<const Event> events,
                                       double rate) {
  return run(events, std::vector<RatePhase>{{events.size(), rate}});
}

ShardedSimResult ShardedSimulator::run(std::span<const Event> events,
                                       const std::vector<RatePhase>& phases) {
  const std::vector<double> arrival_ts =
      arrival_schedule(events.size(), phases);

  ShardedSimResult result;
  StreamEngine engine(config_.engine);
  const auto t0 = std::chrono::steady_clock::now();
  if (config_.batch_size > 0) {
    // Batched throughput replay: hand the engine whole batches (validated
    // unpaced in the constructor -- pacing is inherently per event).
    for (std::size_t i = 0; i < events.size(); i += config_.batch_size) {
      engine.push_batch(events.subspan(
          i, std::min(config_.batch_size, events.size() - i)));
    }
  } else {
    for (std::size_t i = 0; i < events.size(); ++i) {
      if (config_.replay_speed > 0.0) {
        // Pace the router: virtual arrival t maps to wall t / speed.  Spin
        // with yields -- sleep granularity is far coarser than event gaps.
        const double due = arrival_ts[i] / config_.replay_speed;
        while (std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                             t0)
                   .count() < due) {
          std::this_thread::yield();
        }
      }
      engine.push(events[i]);
    }
  }
  result.report = engine.finish();
  if (!events.empty()) {
    result.offered_duration = arrival_ts.back();
    result.offered_rate = result.offered_duration > 0.0
                              ? static_cast<double>(events.size()) /
                                    result.offered_duration
                              : 0.0;
  }
  return result;
}

}  // namespace espice
