// Virtual-time CEP operator simulation.
//
// Substitutes the paper's wall-clock testbed (single-thread Java operator)
// with a deterministic discrete-event simulation:
//   * events arrive at a configurable rate R (arrival_ts = i / R),
//   * a serial operator dequeues FIFO and "spends" a calibrated processing
//     cost per event: base_cost + per_window_cost * (windows the event is
//     kept in).  Shedding therefore genuinely reduces load,
//   * an overload detector ticks at a fixed virtual period, inspects the
//     queue and steers the load shedder,
//   * per-event latency (completion - arrival) is recorded against the
//     latency bound.
//
// Two entry points:
//   * run_pipeline(): no queueing/timing -- used for model training and for
//     golden (ground-truth) match sets,
//   * OperatorSimulator::run(): the full simulation with queue, detector and
//     shedder -- used for every overload experiment.
//
// Note on timestamps: an event's *source* timestamp (Event::ts) drives
// time-based windowing; its *arrival* time (i / R) drives queueing.  The two
// deliberately differ when the stored stream is replayed faster than
// real-time, exactly as in the paper's evaluation setup.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "cep/matcher.hpp"
#include "cep/window.hpp"
#include "core/overload_detector.hpp"
#include "core/shedder.hpp"

namespace espice {

/// Calibrated processing-cost model of the operator.
struct OperatorCostModel {
  /// Fixed cost per dequeued event (seconds).
  double base_cost = 2e-6;
  /// Cost per (event, window) pair the event is *kept* in (seconds); covers
  /// buffering and the event's share of pattern matching.
  double per_window_cost = 2e-5;

  double full_cost(std::size_t windows) const {
    return base_cost + per_window_cost * static_cast<double>(windows);
  }

  void validate() const {
    ESPICE_REQUIRE(base_cost >= 0.0 && per_window_cost > 0.0,
                   "costs must be positive");
  }
};

/// Called for every closed window with the matches detected in it.  The view
/// (and the store slots behind it) is only valid for the duration of the
/// call; materialize() it to retain the contents.
using WindowSink =
    std::function<void(const WindowView&, const std::vector<ComplexEvent>&)>;

/// Runs the windowing + matching pipeline with no queueing or timing.
/// `shedder` may be nullptr (golden run).  `predicted_ws` is the window size
/// (in events) given to the shedder for position scaling; pass 0 to use the
/// count-window span (exact) -- required for time-based windows.
void run_pipeline(std::span<const Event> events, const WindowSpec& spec,
                  const Matcher& matcher, Shedder* shedder,
                  double predicted_ws, const WindowSink& sink);

struct SimConfig {
  WindowSpec window;
  OperatorCostModel cost;
  OverloadDetectorConfig detector;
  /// Window size (events) the shedder assumes when scaling positions.
  /// 0 = use window.span_events (count windows) or detector.window_size_events.
  double predicted_ws = 0.0;
};

/// One latency sample: when the event finished and how long it took
/// end-to-end (queueing + processing).
struct LatencySample {
  double completion_ts = 0.0;
  double latency = 0.0;
};

struct SimResult {
  std::vector<ComplexEvent> matches;
  std::vector<LatencySample> latencies;
  std::uint64_t events = 0;
  std::uint64_t memberships = 0;       ///< (event, window) pairs offered
  std::uint64_t memberships_kept = 0;  ///< pairs kept after shedding
  std::uint64_t windows_closed = 0;
  std::uint64_t lb_violations = 0;     ///< events with latency > LB
  double max_latency = 0.0;
  double duration = 0.0;               ///< virtual time until last completion
  bool shedding_ever_active = false;
};

/// A stretch of the input with a constant arrival rate; lets experiments
/// model bursts (e.g. steady 0.9x capacity with a 1.5x burst in the middle).
struct RatePhase {
  std::size_t events = 0;  ///< how many events arrive at this rate
  double rate = 0.0;       ///< events/second
};

/// Arrival timestamps for `n` events under the given rate schedule (the last
/// phase extends to the end of the stream).  Shared by OperatorSimulator and
/// the sharded engine's simulator.
std::vector<double> arrival_schedule(std::size_t n,
                                     const std::vector<RatePhase>& phases);

class OperatorSimulator {
 public:
  /// `shedder` must outlive run(); pass a NullShedder for golden behaviour.
  OperatorSimulator(SimConfig config, Matcher matcher, Shedder& shedder);

  /// Replays `events` with arrivals at `input_rate` events/second.
  SimResult run(std::span<const Event> events, double input_rate);

  /// Replays `events` through the given rate phases (the last phase extends
  /// to the end of the stream if the phase counts fall short).
  SimResult run(std::span<const Event> events,
                const std::vector<RatePhase>& phases);

 private:
  SimConfig config_;
  Matcher matcher_;
  Shedder& shedder_;
};

}  // namespace espice
