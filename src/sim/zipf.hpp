// Zipf-keyed workload generation for skew experiments.
//
// The sharded engine's hash routing balances UNIFORM key traffic well; the
// interesting regime is skew.  Real key popularity is heavy-tailed, and the
// standard model is the Zipf distribution: key rank k (1-based) is drawn
// with probability (1/k^s) / H_{n,s}, where H_{n,s} is the generalized
// harmonic number.  s = 0 degenerates to uniform; s ~= 0.9 matches typical
// web/cache traces; s >= 1.2 is aggressive hot-key skew (the top key alone
// carries ~23% of a 1000-key stream at s = 1.2).
//
// Sampling is inverse-CDF over a precomputed cumulative table (binary
// search, O(log n) per draw) driven by the repo's deterministic Rng, so a
// (seed, n_keys, s) triple always replays the identical stream -- the
// multi-producer oracles and the skew bench rely on that.
//
// make_zipf_stream() materializes the standard test stream shape (type =
// sampled key, seq = index, jittered source timestamps, values in [-1, 1])
// so benches and tests share one generator instead of each rolling a
// slightly different one.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "cep/event.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"

namespace espice {

class ZipfGenerator {
 public:
  /// `n_keys` ranks, exponent `s >= 0` (0 = uniform).  Keys are returned
  /// 0-based, in rank order: key 0 is the hottest.
  ZipfGenerator(std::size_t n_keys, double s) {
    ESPICE_REQUIRE(n_keys > 0, "ZipfGenerator needs at least one key");
    ESPICE_REQUIRE(s >= 0.0, "Zipf exponent must be non-negative");
    cdf_.reserve(n_keys);
    double sum = 0.0;
    for (std::size_t k = 1; k <= n_keys; ++k) {
      sum += 1.0 / std::pow(static_cast<double>(k), s);
      cdf_.push_back(sum);
    }
    const double inv = 1.0 / sum;
    for (double& c : cdf_) c *= inv;
    // Guard the top of the table against accumulated rounding: a draw of
    // u ~= 1.0 must still land on the last key, never past it.
    cdf_.back() = 1.0;
  }

  std::size_t n_keys() const { return cdf_.size(); }

  /// Probability mass of key k (0-based rank).
  double share(std::size_t k) const {
    ESPICE_REQUIRE(k < cdf_.size(), "key rank out of range");
    return k == 0 ? cdf_[0] : cdf_[k] - cdf_[k - 1];
  }

  /// Draws one key (0-based rank) from the distribution.
  std::size_t sample(Rng& rng) const {
    const double u = rng.uniform();
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return static_cast<std::size_t>(it - cdf_.begin());
  }

 private:
  std::vector<double> cdf_;  ///< cdf_[k] = P(key <= k), strictly increasing
};

/// The standard skew-experiment stream: `n` events whose types are Zipf(s)
/// draws over `n_keys` keys, seq = index, source timestamps advancing by a
/// jittered ~5ms step, values uniform in [-1, 1].  Deterministic in
/// (n, n_keys, s, seed).
inline std::vector<Event> make_zipf_stream(std::size_t n, std::size_t n_keys,
                                           double s, std::uint64_t seed) {
  ZipfGenerator zipf(n_keys, s);
  Rng rng(seed);
  std::vector<Event> events;
  events.reserve(n);
  double ts = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    Event e;
    e.type = static_cast<EventTypeId>(zipf.sample(rng));
    e.seq = i;
    ts += rng.uniform(0.0, 0.01);
    e.ts = ts;
    e.value = rng.uniform(-1.0, 1.0);
    events.push_back(e);
  }
  return events;
}

}  // namespace espice
