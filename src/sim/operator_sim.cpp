#include "sim/operator_sim.hpp"

#include <algorithm>
#include <deque>

namespace espice {

namespace {

double resolve_predicted_ws(const SimConfig& config) {
  if (config.predicted_ws > 0.0) return config.predicted_ws;
  if (config.window.span_kind == WindowSpan::kCount) {
    return static_cast<double>(config.window.span_events);
  }
  return static_cast<double>(config.detector.window_size_events);
}

}  // namespace

void run_pipeline(std::span<const Event> events, const WindowSpec& spec,
                  const Matcher& matcher, Shedder* shedder,
                  double predicted_ws, const WindowSink& sink) {
  WindowManager wm(spec);
  if (predicted_ws <= 0.0) {
    ESPICE_REQUIRE(spec.span_kind == WindowSpan::kCount || shedder == nullptr,
                   "time-based windows need an explicit predicted_ws");
    predicted_ws = static_cast<double>(spec.span_events);
  }
  auto flush = [&] {
    for (const WindowView& w : wm.drain_closed()) {
      const auto matches = matcher.match_window(w);
      sink(w, matches);
    }
  };
  for (const Event& e : events) {
    auto& memberships = wm.offer(e);
    for (const auto& m : memberships) {
      if (shedder == nullptr ||
          !shedder->should_drop(e, m.position, predicted_ws)) {
        wm.keep(m, e);
      }
    }
    flush();
  }
  wm.close_all();
  flush();
}

OperatorSimulator::OperatorSimulator(SimConfig config, Matcher matcher,
                                     Shedder& shedder)
    : config_(std::move(config)),
      matcher_(std::move(matcher)),
      shedder_(shedder) {
  config_.window.validate();
  config_.cost.validate();
  config_.detector.validate();
}

SimResult OperatorSimulator::run(std::span<const Event> events,
                                 double input_rate) {
  return run(events, std::vector<RatePhase>{{events.size(), input_rate}});
}

std::vector<double> arrival_schedule(std::size_t n,
                                     const std::vector<RatePhase>& phases) {
  ESPICE_REQUIRE(!phases.empty(), "need at least one rate phase");
  for (const auto& p : phases) {
    ESPICE_REQUIRE(p.rate > 0.0, "phase rates must be positive");
  }
  std::vector<double> arrival_ts(n);
  double t = 0.0;
  std::size_t i = 0;
  for (std::size_t p = 0; p < phases.size() && i < n; ++p) {
    const bool last = (p + 1 == phases.size());
    std::size_t budget = last ? n - i : phases[p].events;
    const double step = 1.0 / phases[p].rate;
    while (budget-- > 0 && i < n) {
      arrival_ts[i++] = t;
      t += step;
    }
  }
  while (i < n) {
    arrival_ts[i++] = t;
    t += 1.0 / phases.back().rate;
  }
  return arrival_ts;
}

SimResult OperatorSimulator::run(std::span<const Event> events,
                                 const std::vector<RatePhase>& phases) {
  SimResult result;
  const std::vector<double> arrival_ts =
      arrival_schedule(events.size(), phases);
  if (events.empty()) return result;

  WindowManager wm(config_.window);
  OverloadDetector detector(config_.detector);
  const double predicted_ws = resolve_predicted_ws(config_);
  const double lb = config_.detector.latency_bound;

  const std::size_t n = events.size();
  result.latencies.reserve(n);

  // FIFO discipline: event i starts at s_i = max(arrival_i, finish_{i-1}).
  // Detector ticks are interleaved at fixed virtual periods; the queue size
  // at tick time t is (#arrived by t) - (#completed by t), both monotone.
  std::deque<double> pending_completions;  // not yet counted by a tick
  std::uint64_t completed_before_ticks = 0;
  std::size_t arrived_before_ticks = 0;  // monotone cursor into arrival_ts
  double next_tick = 0.0;
  double prev_finish = 0.0;

  auto fire_ticks_until = [&](double t) {
    while (next_tick <= t) {
      while (!pending_completions.empty() &&
             pending_completions.front() <= next_tick) {
        pending_completions.pop_front();
        ++completed_before_ticks;
      }
      while (arrived_before_ticks < n &&
             arrival_ts[arrived_before_ticks] <= next_tick) {
        ++arrived_before_ticks;
      }
      const std::uint64_t in_queue =
          arrived_before_ticks - completed_before_ticks;
      const DropCommand cmd = detector.tick(static_cast<std::size_t>(in_queue));
      if (cmd.active) result.shedding_ever_active = true;
      shedder_.on_command(cmd);
      next_tick += config_.detector.tick_period;
    }
  };

  auto flush_windows = [&](double now) {
    for (const WindowView& w : wm.drain_closed()) {
      ++result.windows_closed;
      auto matches = matcher_.match_window(w);
      for (auto& m : matches) {
        m.detection_ts = now;  // detection happens at operator (virtual) time
        result.matches.push_back(std::move(m));
      }
    }
  };

  for (std::size_t i = 0; i < n; ++i) {
    const Event& e = events[i];
    const double arrival = arrival_ts[i];
    detector.observe_arrival(arrival);

    // The operator picks this event up once it has arrived and the previous
    // event finished; detector commands issued up to that instant apply.
    const double start = std::max(arrival, prev_finish);
    fire_ticks_until(start);

    auto& memberships = wm.offer(e);
    result.memberships += memberships.size();
    std::size_t kept = 0;
    for (const auto& m : memberships) {
      if (!shedder_.should_drop(e, m.position, predicted_ws)) {
        wm.keep(m, e);
        ++kept;
      }
    }
    result.memberships_kept += kept;

    // The detector learns the *unshedded* cost (used for th and qmax); the
    // virtual clock advances by the *actual* (post-shedding) cost.
    detector.observe_processing_cost(config_.cost.full_cost(memberships.size()));
    const double finish = start + config_.cost.full_cost(kept);
    prev_finish = finish;
    pending_completions.push_back(finish);

    const double latency = finish - arrival;
    result.latencies.push_back(LatencySample{finish, latency});
    result.max_latency = std::max(result.max_latency, latency);
    if (latency > lb) ++result.lb_violations;

    flush_windows(finish);
  }
  wm.close_all();
  flush_windows(prev_finish);

  result.events = n;
  result.duration = prev_finish;
  return result;
}

}  // namespace espice
