// Binary serialization primitives for snapshots and log records.
//
// SnapshotWriter appends explicitly-sized little-endian fields to a byte
// buffer; SnapshotReader reads them back with bounds checking (a truncated
// or corrupted payload surfaces as espice::Error{kCorruptSnapshot}, never as
// an out-of-bounds read).  Fields are written one by one -- no struct
// memcpy -- so padding bytes never reach the disk and the format is
// identical across compilers.  Every Snapshotable component (window
// manager, matcher run state, shedder models, ...) serializes through this
// pair, which keeps the on-disk snapshot format in exactly one place.
//
// Doubles are bit-cast through uint64 (IEEE 754 interchange), so restoring
// reproduces the exact bit pattern -- a requirement for the bit-identical
// recovery guarantee.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

#include "cep/event.hpp"
#include "common/error.hpp"

namespace espice::durability {

class SnapshotWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(static_cast<std::byte>(v)); }
  void u16(std::uint16_t v) { le(v); }
  void u32(std::uint32_t v) { le(v); }
  void u64(std::uint64_t v) { le(v); }
  void i32(std::int32_t v) { le(static_cast<std::uint32_t>(v)); }
  void boolean(bool v) { u8(v ? 1 : 0); }
  void f64(double v) { le(std::bit_cast<std::uint64_t>(v)); }
  void size(std::size_t v) { u64(static_cast<std::uint64_t>(v)); }

  void bytes(const void* data, std::size_t len) {
    const auto* p = static_cast<const std::byte*>(data);
    buf_.insert(buf_.end(), p, p + len);
  }

  void str(const std::string& s) {
    size(s.size());
    bytes(s.data(), s.size());
  }

  /// Length-prefixed vector of integral elements (written element-wise).
  template <typename T>
  void vec_int(const std::vector<T>& v) {
    static_assert(std::is_integral_v<T>);
    size(v.size());
    for (const T& x : v) le(static_cast<std::make_unsigned_t<T>>(x));
  }

  void vec_f64(const std::vector<double>& v) {
    size(v.size());
    for (double x : v) f64(x);
  }

  /// Canonical packed event encoding (34 bytes), shared by the event log
  /// and every snapshot that embeds event payloads.  Packed on the stack
  /// and appended with one insert: the log's append path encodes hundreds
  /// of events per record, so one grow-check per event instead of one per
  /// field is the difference between the encoder and the disk being the
  /// bottleneck.
  void event(const Event& e) {
    std::byte tmp[34];
    put_le(tmp, static_cast<std::uint16_t>(e.type));
    put_le(tmp + 2, e.seq);
    put_le(tmp + 10, std::bit_cast<std::uint64_t>(e.ts));
    put_le(tmp + 18, std::bit_cast<std::uint64_t>(e.value));
    put_le(tmp + 26, std::bit_cast<std::uint64_t>(e.aux));
    bytes(tmp, sizeof(tmp));
  }

  /// Pre-size for `n` further bytes (appends still bounds-grow correctly
  /// without it; this only saves reallocation in bulk encodes).
  void reserve(std::size_t n) { buf_.reserve(buf_.size() + n); }

  /// Drops the contents but keeps the capacity, so a writer can be reused
  /// across records without re-paying allocation.
  void clear() { buf_.clear(); }

  const std::vector<std::byte>& buffer() const { return buf_; }
  std::vector<std::byte> take() { return std::move(buf_); }
  std::size_t position() const { return buf_.size(); }

 private:
  template <typename T>
  static void put_le(std::byte* p, T v) {
    static_assert(std::is_unsigned_v<T>);
    if constexpr (std::endian::native == std::endian::little) {
      std::memcpy(p, &v, sizeof(T));  // same bytes, single store
    } else {
      for (std::size_t i = 0; i < sizeof(T); ++i) {
        p[i] = static_cast<std::byte>((v >> (8 * i)) & 0xFFu);
      }
    }
  }

  template <typename T>
  void le(T v) {
    static_assert(std::is_unsigned_v<T>);
    std::byte tmp[sizeof(T)];
    put_le(tmp, v);
    buf_.insert(buf_.end(), tmp, tmp + sizeof(T));
  }

  std::vector<std::byte> buf_;
};

class SnapshotReader {
 public:
  explicit SnapshotReader(std::span<const std::byte> data) : data_(data) {}

  std::uint8_t u8() { return static_cast<std::uint8_t>(take(1)[0]); }
  std::uint16_t u16() { return le<std::uint16_t>(); }
  std::uint32_t u32() { return le<std::uint32_t>(); }
  std::uint64_t u64() { return le<std::uint64_t>(); }
  std::int32_t i32() { return static_cast<std::int32_t>(le<std::uint32_t>()); }
  bool boolean() { return u8() != 0; }
  double f64() { return std::bit_cast<double>(le<std::uint64_t>()); }
  std::size_t size() { return checked_size(u64()); }

  void bytes(void* out, std::size_t len) {
    std::memcpy(out, take(len).data(), len);
  }

  std::string str() {
    const std::size_t n = size();
    const auto s = take(n);
    return std::string(reinterpret_cast<const char*>(s.data()), n);
  }

  template <typename T>
  std::vector<T> vec_int() {
    static_assert(std::is_integral_v<T>);
    const std::size_t n = checked_size(u64(), sizeof(T));
    std::vector<T> v;
    v.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      v.push_back(static_cast<T>(le<std::make_unsigned_t<T>>()));
    }
    return v;
  }

  std::vector<double> vec_f64() {
    const std::size_t n = checked_size(u64(), sizeof(double));
    std::vector<double> v;
    v.reserve(n);
    for (std::size_t i = 0; i < n; ++i) v.push_back(f64());
    return v;
  }

  /// Mirror of SnapshotWriter::event(): one bounds check for the whole
  /// 34-byte encoding (replay decodes millions of these).
  Event event() {
    const auto s = take(34);
    const std::byte* p = s.data();
    Event e;
    e.type = static_cast<EventTypeId>(get_le<std::uint16_t>(p));
    e.seq = get_le<std::uint64_t>(p + 2);
    e.ts = std::bit_cast<double>(get_le<std::uint64_t>(p + 10));
    e.value = std::bit_cast<double>(get_le<std::uint64_t>(p + 18));
    e.aux = std::bit_cast<double>(get_le<std::uint64_t>(p + 26));
    return e;
  }

  std::size_t remaining() const { return data_.size() - pos_; }
  bool done() const { return remaining() == 0; }

  /// All fields consumed?  Call at the end of a restore to catch format
  /// drift (a component reading fewer fields than were written).
  void expect_done() const {
    ESPICE_CHECK(done(), ErrorCode::kCorruptSnapshot,
                 "snapshot payload has " + std::to_string(remaining()) +
                     " unread trailing bytes");
  }

 private:
  std::span<const std::byte> take(std::size_t len) {
    ESPICE_CHECK(len <= remaining(), ErrorCode::kCorruptSnapshot,
                 "snapshot payload truncated");
    const auto s = data_.subspan(pos_, len);
    pos_ += len;
    return s;
  }

  template <typename T>
  static T get_le(const std::byte* p) {
    static_assert(std::is_unsigned_v<T>);
    if constexpr (std::endian::native == std::endian::little) {
      T v;
      std::memcpy(&v, p, sizeof(T));  // same bytes, single load
      return v;
    } else {
      T v = 0;
      for (std::size_t i = 0; i < sizeof(T); ++i) {
        v |= static_cast<T>(static_cast<unsigned char>(p[i])) << (8 * i);
      }
      return v;
    }
  }

  template <typename T>
  T le() {
    return get_le<T>(take(sizeof(T)).data());
  }

  /// A length prefix can never exceed what is left to read -- reject early
  /// so a corrupted count cannot drive a multi-gigabyte reserve.
  std::size_t checked_size(std::uint64_t n, std::size_t elem = 1) {
    ESPICE_CHECK(elem == 0 || n <= remaining() / elem,
                 ErrorCode::kCorruptSnapshot,
                 "snapshot length prefix exceeds payload");
    return static_cast<std::size_t>(n);
  }

  std::span<const std::byte> data_;
  std::size_t pos_ = 0;
};

}  // namespace espice::durability
