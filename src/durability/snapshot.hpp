// Snapshot store: checkpointed engine state, keyed by log offset.
//
// A snapshot is one opaque payload (the engine serializes every
// Snapshotable component into it; see stream_engine.cpp) tagged with the
// event-log offset at which it was cut: restoring the payload and replaying
// the log from that offset reproduces the engine bit-for-bit.
//
// On-disk protocol (crash-safe at every step):
//   1. payload -> `snap-<offset>.snap.tmp`   (header + CRC32 + payload)
//   2. fsync, rename -> `snap-<offset>.snap` (atomic publish of the file)
//   3. MANIFEST.tmp -> fsync -> rename -> MANIFEST (atomic pointer swap)
// A crash before (3) leaves the previous MANIFEST intact; load_latest()
// still finds the new file by directory scan if it is valid.  A crash
// inside (1) leaves only a .tmp, which is ignored and cleaned up.  Every
// fallback (corrupt manifest, corrupt snapshot file) is reported as
// damage, never silently skipped.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace espice::durability {

class SnapshotStore {
 public:
  /// Creates the directory if needed.
  explicit SnapshotStore(std::string dir);

  /// Atomically publishes a snapshot cut at `log_offset`.
  void write(std::uint64_t log_offset, std::span<const std::byte> payload);

  struct Loaded {
    std::uint64_t log_offset = 0;
    std::vector<std::byte> payload;
  };

  /// Newest valid snapshot, or nullopt when none exists.  Prefers the
  /// MANIFEST pointer; falls back to scanning `snap-*.snap` files (newest
  /// offset first) when the manifest is missing, corrupt, or points at a
  /// corrupt file.  Damage found along the way is appended to `damage`.
  std::optional<Loaded> load_latest(
      std::vector<std::string>* damage = nullptr) const;

  /// Removes snapshots cut strictly below `log_offset` (superseded by a
  /// newer checkpoint).  Returns how many files were removed.
  std::size_t prune_below(std::uint64_t log_offset);

  const std::string& dir() const { return dir_; }

 private:
  std::string dir_;
};

}  // namespace espice::durability
