#include "durability/event_log.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <utility>

#include "common/error.hpp"
#include "durability/checksum.hpp"
#include "durability/crash_point.hpp"
#include "durability/io_env.hpp"
#include "durability/serial.hpp"

namespace espice::durability {
namespace fs = std::filesystem;

namespace {

constexpr std::uint32_t kSegmentMagic = 0x45534C47;  // "GLSE"
constexpr std::uint32_t kFormatVersion = 1;
constexpr std::uint32_t kRecordKind = 0x52454331;  // "1CER"
constexpr std::uint32_t kFooterKind = 0x464F4F31;  // "1OOF"

// Sizes of the fixed-layout chunks (see encode_* below).
constexpr std::size_t kSegmentHeaderBytes = 20;
constexpr std::size_t kRecordHeaderBytes = 28;
constexpr std::size_t kFooterBytes = 28;

std::string errno_detail(const std::string& op, const std::string& path) {
  return op + " failed for '" + path + "': " + std::strerror(errno);
}

std::string segment_path(const std::string& dir, std::uint64_t base) {
  char name[40];
  std::snprintf(name, sizeof(name), "seg-%020llu.elog",
                static_cast<unsigned long long>(base));
  return (fs::path(dir) / name).string();
}

/// All `seg-*.elog` files in `dir`, sorted by their base event index.
std::vector<std::pair<std::uint64_t, std::string>> list_segments(
    const std::string& dir) {
  std::vector<std::pair<std::uint64_t, std::string>> out;
  if (!fs::exists(dir)) return out;
  for (const auto& entry : fs::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.size() < 10 || name.rfind("seg-", 0) != 0 ||
        name.substr(name.size() - 5) != ".elog") {
      continue;
    }
    const std::string digits = name.substr(4, name.size() - 9);
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    out.emplace_back(std::stoull(digits), entry.path().string());
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::byte> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  ESPICE_CHECK(in.good(), ErrorCode::kIo, "cannot open '" + path + "'");
  in.seekg(0, std::ios::end);
  const auto len = static_cast<std::size_t>(in.tellg());
  in.seekg(0, std::ios::beg);
  std::vector<std::byte> buf(len);
  if (len != 0) in.read(reinterpret_cast<char*>(buf.data()), len);
  ESPICE_CHECK(in.good(), ErrorCode::kIo, "cannot read '" + path + "'");
  return buf;
}

void encode_segment_header(SnapshotWriter& w, std::uint64_t base) {
  w.u32(kSegmentMagic);
  w.u32(kFormatVersion);
  w.u64(base);
  w.u32(crc32(w.buffer().data(), w.position()));
}

void encode_record_header(SnapshotWriter& w, std::uint32_t payload_len,
                          std::uint32_t count, std::uint64_t base,
                          std::uint32_t payload_crc) {
  const std::size_t start = w.position();
  w.u32(kRecordKind);
  w.u32(payload_len);
  w.u32(count);
  w.u64(base);
  w.u32(payload_crc);
  w.u32(crc32(w.buffer().data() + start, w.position() - start));
}

void encode_footer(SnapshotWriter& w, std::uint64_t records,
                   std::uint64_t end_index, std::uint32_t segment_crc) {
  w.u32(kFooterKind);
  w.u64(records);
  w.u64(end_index);
  w.u32(segment_crc);
  w.u32(crc32(w.buffer().data(), w.position()));
}

void encode_events(SnapshotWriter& w, std::span<const Event> events) {
  for (const Event& e : events) w.event(e);
}

std::vector<Event> decode_events(std::span<const std::byte> payload,
                                 std::size_t count) {
  SnapshotReader r(payload);
  std::vector<Event> events;
  events.reserve(count);
  for (std::size_t i = 0; i < count; ++i) events.push_back(r.event());
  r.expect_done();
  return events;
}

/// Result of validating one segment file byte-by-byte.
struct SegmentScan {
  bool header_ok = false;
  bool sealed = false;
  std::uint64_t base = 0;
  std::uint64_t end_index = 0;    ///< base + events in valid records
  std::uint64_t records = 0;
  std::size_t valid_bytes = 0;    ///< end of last valid chunk in the file
  std::uint32_t running_crc = 0;  ///< CRC state over the record payload CRCs
  std::vector<std::string> damage;
};

/// Walks the segment, accepting chunks until the first invalid byte; the
/// durable part of the file is [0, valid_bytes).  Every rejection produces
/// a damage report naming the file and byte offset.
SegmentScan scan_segment(const std::string& path) {
  SegmentScan scan;
  const std::vector<std::byte> buf = read_file(path);
  const auto bad = [&](std::size_t off, const std::string& why) {
    scan.damage.push_back("'" + path + "' @" + std::to_string(off) + ": " +
                          why);
  };

  if (buf.size() < kSegmentHeaderBytes) {
    bad(0, "truncated segment header");
    return scan;
  }
  {
    SnapshotReader r(std::span(buf.data(), kSegmentHeaderBytes));
    const std::uint32_t magic = r.u32();
    const std::uint32_t version = r.u32();
    const std::uint64_t base = r.u64();
    const std::uint32_t crc = r.u32();
    if (magic != kSegmentMagic || version != kFormatVersion ||
        crc != crc32(buf.data(), kSegmentHeaderBytes - 4)) {
      bad(0, "bad segment header (magic/version/crc)");
      return scan;
    }
    scan.base = base;
  }
  scan.header_ok = true;
  scan.end_index = scan.base;
  scan.valid_bytes = kSegmentHeaderBytes;
  scan.running_crc = crc32_init();

  std::size_t pos = kSegmentHeaderBytes;
  while (pos < buf.size()) {
    const std::size_t left = buf.size() - pos;
    if (left < sizeof(std::uint32_t)) {
      bad(pos, "torn chunk kind (" + std::to_string(left) + " bytes)");
      return scan;
    }
    SnapshotReader kind_r(std::span(buf.data() + pos, left));
    const std::uint32_t kind = kind_r.u32();

    if (kind == kRecordKind) {
      if (left < kRecordHeaderBytes) {
        bad(pos, "torn record header (" + std::to_string(left) + " bytes)");
        return scan;
      }
      SnapshotReader r(std::span(buf.data() + pos, kRecordHeaderBytes));
      r.u32();  // kind, already read
      const std::uint32_t payload_len = r.u32();
      const std::uint32_t count = r.u32();
      const std::uint64_t base = r.u64();
      const std::uint32_t payload_crc = r.u32();
      const std::uint32_t header_crc = r.u32();
      if (header_crc != crc32(buf.data() + pos, kRecordHeaderBytes - 4)) {
        bad(pos, "record header CRC mismatch");
        return scan;
      }
      if (payload_len != count * kLogEventBytes || count == 0) {
        bad(pos, "record header inconsistent (len/count)");
        return scan;
      }
      if (base != scan.end_index) {
        bad(pos, "record base index " + std::to_string(base) +
                     " breaks contiguity (expected " +
                     std::to_string(scan.end_index) + ")");
        return scan;
      }
      if (left < kRecordHeaderBytes + payload_len) {
        bad(pos, "torn record payload (" +
                     std::to_string(left - kRecordHeaderBytes) + " of " +
                     std::to_string(payload_len) + " bytes)");
        return scan;
      }
      const std::byte* payload = buf.data() + pos + kRecordHeaderBytes;
      if (payload_crc != crc32(payload, payload_len)) {
        bad(pos, "record payload CRC mismatch");
        return scan;
      }
      // Hierarchical segment CRC: every payload byte is already covered by
      // the record's own CRC (validated just above), so the footer chains
      // the 4 on-disk CRC bytes per record instead of re-hashing payloads.
      scan.running_crc =
          crc32_update(scan.running_crc, buf.data() + pos + 20, 4);
      scan.records += 1;
      scan.end_index += count;
      pos += kRecordHeaderBytes + payload_len;
      scan.valid_bytes = pos;
      continue;
    }

    if (kind == kFooterKind) {
      if (left < kFooterBytes) {
        bad(pos, "torn segment footer");
        return scan;
      }
      SnapshotReader r(std::span(buf.data() + pos, kFooterBytes));
      r.u32();  // kind
      const std::uint64_t records = r.u64();
      const std::uint64_t end_index = r.u64();
      const std::uint32_t segment_crc = r.u32();
      const std::uint32_t footer_crc = r.u32();
      if (footer_crc != crc32(buf.data() + pos, kFooterBytes - 4)) {
        bad(pos, "segment footer CRC mismatch");
        return scan;
      }
      if (records != scan.records || end_index != scan.end_index ||
          segment_crc != crc32_final(scan.running_crc)) {
        bad(pos, "segment footer disagrees with records (whole-segment CRC "
                 "or counts)");
        return scan;
      }
      pos += kFooterBytes;
      scan.valid_bytes = pos;
      scan.sealed = true;
      if (pos != buf.size()) {
        bad(pos, "trailing bytes after segment footer");
      }
      return scan;
    }

    bad(pos, "unknown chunk kind");
    return scan;
  }
  return scan;
}

/// Directory-level scan shared by writer (repairing) and reader
/// (read-only): validates each segment in base order, enforces contiguity
/// between segments, and stops the durable prefix at the first damage.
struct DirScan {
  std::vector<std::pair<std::string, SegmentScan>> valid;  ///< durable prefix
  std::vector<std::string> dropped;  ///< paths past the damage point
  LogOpenResult result;
};

DirScan scan_dir(const std::string& dir) {
  DirScan out;
  const auto segments = list_segments(dir);
  bool stopped = false;
  std::uint64_t expected_base = 0;
  for (std::size_t i = 0; i < segments.size(); ++i) {
    const auto& [base, path] = segments[i];
    if (stopped) {
      out.dropped.push_back(path);
      continue;
    }
    if (!out.valid.empty() && base != expected_base) {
      out.result.damage.push_back("'" + path + "': base index " +
                                  std::to_string(base) +
                                  " breaks segment contiguity (expected " +
                                  std::to_string(expected_base) + ")");
      out.dropped.push_back(path);
      stopped = true;
      continue;
    }
    SegmentScan scan = scan_segment(path);
    for (auto& d : scan.damage) out.result.damage.push_back(std::move(d));
    if (!scan.header_ok) {
      out.dropped.push_back(path);
      stopped = true;
      continue;
    }
    const bool is_last = (i + 1 == segments.size());
    if (!is_last && !scan.sealed) {
      // A non-final segment must be sealed; if not, its tail (and every
      // later segment) is not trustworthy.
      out.result.damage.push_back("'" + path +
                                  "': non-final segment is not sealed; "
                                  "durable prefix ends at its last valid "
                                  "record");
      stopped = true;
    }
    if (!scan.damage.empty()) stopped = true;
    expected_base = scan.end_index;
    out.result.durable_events = scan.end_index;
    out.valid.emplace_back(path, std::move(scan));
  }
  return out;
}

}  // namespace

void EventLogConfig::validate() const {
  ESPICE_REQUIRE(!dir.empty(), "event log: dir must be non-empty");
  ESPICE_REQUIRE(segment_bytes >= 4096,
                 "event log: segment_bytes must be >= 4096");
  ESPICE_REQUIRE(fsync != FsyncPolicy::kInterval || fsync_interval_records > 0,
                 "event log: fsync_interval_records must be > 0");
}

EventLogWriter::EventLogWriter(EventLogConfig config)
    : config_(std::move(config)) {
  config_.validate();
  std::error_code ec;
  fs::create_directories(config_.dir, ec);
  ESPICE_CHECK(!ec, ErrorCode::kIo,
               "cannot create log dir '" + config_.dir + "'");

  DirScan scan = scan_dir(config_.dir);
  open_result_ = scan.result;
  next_index_ = open_result_.durable_events;
  synced_index_ = next_index_;  // the validated on-disk prefix

  // Repair: drop everything past the damage point and truncate the last
  // valid segment back to its last valid record.
  for (const std::string& path : scan.dropped) {
    open_result_.damage.push_back("'" + path + "': removed (past damage)");
    fs::remove(path, ec);
  }

  if (scan.valid.empty()) {
    open_segment(0);
    return;
  }

  auto& [last_path, last] = scan.valid.back();
  if (last.sealed) {
    if (!last.damage.empty()) {
      // Sealed but with trailing garbage after the footer: truncate the
      // garbage away (never append after a footer -- scans would drop
      // anything written there) and roll to a fresh segment.
      const int fd =
          io_env().open("log.open", last_path.c_str(), O_WRONLY | O_CLOEXEC, 0);
      ESPICE_CHECK(fd >= 0, ErrorCode::kIo, errno_detail("open", last_path));
      const int rc = io_env().ftruncate(
          "log.ftruncate", fd, static_cast<std::int64_t>(last.valid_bytes));
      ::close(fd);
      ESPICE_CHECK(rc == 0, ErrorCode::kIo,
                   errno_detail("ftruncate", last_path));
    }
    open_segment(next_index_);
    return;
  }
  // Resume appending into the unsealed (or torn) final segment.
  fd_ = io_env().open("log.open", last_path.c_str(), O_WRONLY | O_CLOEXEC, 0);
  ESPICE_CHECK(fd_ >= 0, ErrorCode::kIo, errno_detail("open", last_path));
  if (io_env().ftruncate("log.ftruncate", fd_,
                         static_cast<std::int64_t>(last.valid_bytes)) != 0) {
    throw Error(ErrorCode::kIo, errno_detail("ftruncate", last_path));
  }
  if (::lseek(fd_, 0, SEEK_END) < 0) {
    throw Error(ErrorCode::kIo, errno_detail("lseek", last_path));
  }
  active_path_ = last_path;
  segment_base_ = last.base;
  segment_records_ = last.records;
  segment_size_ = last.valid_bytes;
  segment_crc_ = last.running_crc;
}

EventLogWriter::~EventLogWriter() {
  if (fd_ >= 0) ::close(fd_);
}

void EventLogWriter::open_segment(std::uint64_t base_index) {
  ESPICE_CRASH_POINT("log.segment.open");
  active_path_ = segment_path(config_.dir, base_index);
  fd_ = io_env().open("log.open", active_path_.c_str(),
                      O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  ESPICE_CHECK(fd_ >= 0, ErrorCode::kIo, errno_detail("open", active_path_));
  SnapshotWriter w;
  encode_segment_header(w, base_index);
  write_all(w.buffer().data(), w.position());
  segment_base_ = base_index;
  segment_records_ = 0;
  segment_size_ = w.position();
  segment_crc_ = crc32_init();
  // Directory-entry durability follows the same policy split as sealing.
  if (config_.fsync != FsyncPolicy::kNone) {
    fsync_dir("log.dir.fsync", config_.dir);
  }
}

void EventLogWriter::seal_segment() {
  ESPICE_CRASH_POINT("log.segment.seal");
  SnapshotWriter w;
  encode_footer(w, segment_records_, next_index_, crc32_final(segment_crc_));
  write_all(w.buffer().data(), w.position());
  // kNone means NO fsync anywhere -- the policy promises process-crash
  // durability only, and an fsync here would flush segment_bytes of dirty
  // page cache on every roll, dwarfing the append path it rides on.  The
  // syncing policies make the finished segment durable before moving on.
  if (config_.fsync != FsyncPolicy::kNone) sync();
  ::close(fd_);
  fd_ = -1;
}

void EventLogWriter::write_all(const void* data, std::size_t len) {
  const auto* p = static_cast<const char*>(data);
  while (len > 0) {
    const long n = io_env().write("log.write", fd_, p, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw Error(ErrorCode::kIo, errno_detail("write", active_path_));
    }
    p += n;
    len -= static_cast<std::size_t>(n);
  }
}

void EventLogWriter::repair_torn_tail() {
  // Best effort: put the file back to the end of the last complete record
  // so a retried append lands cleanly instead of after torn bytes (which a
  // recovery scan would truncate -- along with every record appended after
  // them).  If even the truncate fails the disk is gone for good: poison
  // the writer so later appends fail fast; the on-disk durable prefix
  // still ends at the last valid record after recovery's own scan.
  if (fd_ < 0 ||
      io_env().ftruncate("log.ftruncate", fd_,
                         static_cast<std::int64_t>(segment_size_)) != 0 ||
      ::lseek(fd_, 0, SEEK_END) < 0) {
    poisoned_ = true;
  }
}

void EventLogWriter::append_batch(std::span<const Event> events) {
  if (events.empty()) return;
  ESPICE_CHECK(!poisoned_, ErrorCode::kIo,
               "event log writer poisoned by an earlier unrepaired I/O "
               "failure on '" +
                   active_path_ + "'");
  ESPICE_CRASH_POINT("log.append.before");

  SnapshotWriter& payload = payload_scratch_;
  payload.clear();
  payload.reserve(events.size() * kLogEventBytes);
  encode_events(payload, events);
  const std::uint32_t payload_crc =
      crc32(payload.buffer().data(), payload.position());

  SnapshotWriter& rec = record_scratch_;
  rec.clear();
  rec.reserve(kRecordHeaderBytes + payload.position());
  encode_record_header(rec, static_cast<std::uint32_t>(payload.position()),
                       static_cast<std::uint32_t>(events.size()), next_index_,
                       payload_crc);
  rec.bytes(payload.buffer().data(), payload.position());

  const std::vector<std::byte>& buf = rec.buffer();
  // Catch espice::Error only: a SimulatedCrash escaping the crash points
  // must leave its torn bytes on disk untouched -- that torn tail IS the
  // kill being simulated, and the recovery oracle asserts it is found.
  try {
    if (crash_hook_armed()) {
      // Split the write so a crash at the midpoint leaves a genuinely torn
      // record on disk; the production path below stays one write().
      const std::size_t half = buf.size() / 2;
      write_all(buf.data(), half);
      ESPICE_CRASH_POINT("log.append.mid_record");
      write_all(buf.data() + half, buf.size() - half);
    } else {
      write_all(buf.data(), buf.size());
    }
  } catch (const Error&) {
    repair_torn_tail();
    throw;
  }

  // Chain the record's own CRC into the segment CRC (see scan_segment: the
  // footer covers record CRCs, not payload bytes, so sealing a segment
  // never re-hashes data every record already protects).
  segment_crc_ = crc32_update(segment_crc_, buf.data() + 20, 4);
  segment_records_ += 1;
  segment_size_ += buf.size();
  next_index_ += events.size();

  switch (config_.fsync) {
    case FsyncPolicy::kNone:
      break;
    case FsyncPolicy::kEveryBatch:
      sync();
      break;
    case FsyncPolicy::kInterval:
      if (++records_since_sync_ >= config_.fsync_interval_records) sync();
      break;
  }
  ESPICE_CRASH_POINT("log.append.done");

  if (segment_size_ >= config_.segment_bytes) {
    // A failure anywhere in the roll leaves footer / fresh-header state
    // unknowable from here; poison rather than risk appending after a torn
    // footer (a scan would silently drop everything written past it).
    try {
      seal_segment();
      open_segment(next_index_);
    } catch (const Error&) {
      poisoned_ = true;
      throw;
    }
  }
}

void EventLogWriter::sync() {
  if (fd_ >= 0) {
    if (io_env().fsync("log.fsync", fd_) != 0) {
      throw Error(ErrorCode::kIo, errno_detail("fsync", active_path_));
    }
    // Prior segments were synced when sealed (syncing policies seal via
    // sync()), so a successful active-segment fsync makes the whole
    // appended prefix durable.
    synced_index_ = next_index_;
  }
  records_since_sync_ = 0;
}

std::size_t EventLogWriter::prune_segments_below(std::uint64_t index) {
  const auto segments = list_segments(config_.dir);
  std::size_t removed = 0;
  // Segment i covers [base_i, base_{i+1}); only drop it when a later
  // segment exists (so it is sealed, not active) and it ends at or below
  // the requested index.
  for (std::size_t i = 0; i + 1 < segments.size(); ++i) {
    if (segments[i + 1].first > index) break;
    if (segments[i].second == active_path_) break;
    std::error_code ec;
    if (fs::remove(segments[i].second, ec)) removed += 1;
  }
  if (removed != 0) fsync_dir("log.dir.fsync", config_.dir);
  return removed;
}

EventLogReader::EventLogReader(std::string dir) : dir_(std::move(dir)) {
  DirScan scan = scan_dir(dir_);
  open_result_ = std::move(scan.result);
  segments_.reserve(scan.valid.size());
  for (auto& [path, seg] : scan.valid) segments_.push_back(path);
}

void EventLogReader::replay(
    std::uint64_t from,
    const std::function<void(std::span<const Event>, std::uint64_t)>& fn)
    const {
  for (const std::string& path : segments_) {
    // Re-scan to bound iteration to the validated prefix of the file (the
    // writer may since have repaired or extended it; records are
    // re-CRC-checked here so replay never decodes unvalidated bytes).
    const SegmentScan scan = scan_segment(path);
    if (scan.end_index <= from) continue;
    const std::vector<std::byte> buf = read_file(path);
    std::size_t pos = kSegmentHeaderBytes;
    std::uint64_t index = scan.base;
    while (pos < scan.valid_bytes) {
      SnapshotReader r(
          std::span(buf.data() + pos, scan.valid_bytes - pos));
      const std::uint32_t kind = r.u32();
      if (kind == kFooterKind) break;
      ESPICE_CHECK(kind == kRecordKind, ErrorCode::kCorruptLog,
                   "replay hit unknown chunk kind");
      const std::uint32_t payload_len = r.u32();
      const std::uint32_t count = r.u32();
      r.u64();  // base (already tracked via `index`)
      r.u32();  // payload crc (validated by scan_segment)
      r.u32();  // header crc
      const std::byte* payload = buf.data() + pos + kRecordHeaderBytes;
      if (index + count > from) {
        const std::vector<Event> events =
            decode_events(std::span(payload, payload_len), count);
        const std::uint64_t skip = from > index ? from - index : 0;
        fn(std::span(events).subspan(static_cast<std::size_t>(skip)),
           index + skip);
      }
      index += count;
      pos += kRecordHeaderBytes + payload_len;
    }
  }
}

std::vector<Event> EventLogReader::read_from(std::uint64_t from) const {
  std::vector<Event> out;
  replay(from, [&](std::span<const Event> events, std::uint64_t) {
    out.insert(out.end(), events.begin(), events.end());
  });
  return out;
}

}  // namespace espice::durability
