// Append-only segmented binary event log (the engine's durable ingestion
// record).
//
// The StreamEngine writes every ingested batch here *before* partitioning
// (write-ahead), so after a crash the stream prefix that reached the log is
// replayable and -- because the whole deterministic pipeline is a pure
// function of the stream -- the engine's state is reconstructible
// bit-for-bit (snapshot + tail replay; see snapshot.hpp and
// StreamEngine::recover_and_start()).
//
// On-disk layout: `<dir>/seg-<base>.elog`, one file per segment, where
// <base> is the global index of the segment's first event.  A segment is
//
//   [header: magic, version, base_index, crc]
//   [record]*                      -- one per appended batch
//   [footer: counts, segment crc]  -- sealed segments only
//
// and a record is
//
//   [kind][payload_len][event_count][base_index][payload_crc][header_crc]
//   [payload: event_count x 34-byte packed events]
//
// Every record carries its own CRC32 and the segment accumulates a running
// CRC over the records' CRC values (hierarchical -- every payload byte is
// already covered by its record CRC, so sealing never re-hashes payloads),
// written into the footer when the segment seals (reaches segment_bytes).
// Both are verified on open.
//
// Torn-tail recovery: a crash can leave the active segment ending in a
// partial record (header without payload, or payload cut short).  open()
// walks the segments, validates headers/CRCs/contiguity, and truncates the
// file at the end of the last valid record -- the torn bytes are reported
// (never silently ignored) and the durable prefix ends there.  Damage in a
// *sealed* segment (bit rot, manual truncation) conservatively ends the
// durable prefix at the last valid record before the damage.
//
// Durability knob: FsyncPolicy trades write latency for the crash window --
// kNone never fsyncs (page cache only; in-process crashes lose nothing,
// power loss may), kInterval fsyncs every fsync_interval_records appends,
// kEveryBatch fsyncs per append.  bench_durability quantifies the cost.
//
// Threading: one writer, owned by the engine's router thread.  Readers are
// independent (open the files read-only).
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "cep/event.hpp"
#include "durability/serial.hpp"

namespace espice::durability {

enum class FsyncPolicy : std::uint8_t { kNone, kInterval, kEveryBatch };

inline const char* fsync_policy_name(FsyncPolicy p) {
  switch (p) {
    case FsyncPolicy::kNone: return "none";
    case FsyncPolicy::kInterval: return "interval";
    case FsyncPolicy::kEveryBatch: return "every-batch";
  }
  return "unknown";
}

struct EventLogConfig {
  std::string dir;
  /// Segment seals (and a new file opens) once its size reaches this.
  std::size_t segment_bytes = 4u << 20;
  FsyncPolicy fsync = FsyncPolicy::kNone;
  /// For kInterval: fsync every this many appended records.
  std::uint64_t fsync_interval_records = 64;

  void validate() const;
};

/// Outcome of opening (and recovering) a log directory.
struct LogOpenResult {
  /// Events in the durable, validated prefix; replay yields exactly these.
  std::uint64_t durable_events = 0;
  /// Human-readable reports of every torn tail / CRC mismatch found (and,
  /// for the writer, repaired by truncation).  Empty = clean open.
  std::vector<std::string> damage;
};

/// Bytes of one packed event on disk (type, seq, ts, value, aux).
inline constexpr std::size_t kLogEventBytes = 34;

class EventLogWriter {
 public:
  /// Opens (creating the directory if needed) and recovers: validates the
  /// existing segments, truncates any torn tail, positions appends after
  /// the last valid record.  open_result() reports what was found.
  explicit EventLogWriter(EventLogConfig config);
  ~EventLogWriter();

  EventLogWriter(const EventLogWriter&) = delete;
  EventLogWriter& operator=(const EventLogWriter&) = delete;

  const LogOpenResult& open_result() const { return open_result_; }

  /// Global index of the next event to append (== durable/appended events).
  std::uint64_t next_index() const { return next_index_; }

  /// Events covered by the last *successful* fsync: the prefix promised to
  /// survive a power loss.  Starts at the validated on-disk prefix found by
  /// open() and advances when sync() succeeds.  Exact under the syncing
  /// policies (sealing a segment syncs it before moving on); best-effort
  /// under FsyncPolicy::kNone, whose contract is process-crash durability
  /// only -- there a forced sync (checkpoint, degrade seal) covers the
  /// active segment but not previously sealed ones, and in-process the
  /// full appended prefix in [synced, next_index) is still on disk and
  /// recoverable either way.
  std::uint64_t synced_index() const { return synced_index_; }

  /// Appends one batch as one record (one write() syscall on the production
  /// path), applies the fsync policy, rolls the segment when full.
  ///
  /// I/O failures throw espice::Error{kIo} with the writer left in a
  /// retryable state where possible: a torn record is truncated away so a
  /// retry appends cleanly, and a failed fsync leaves the record in place
  /// (retry sync() instead of re-appending -- next_index() tells the two
  /// apart).  When the failure cannot be repaired (the truncate itself
  /// fails, or a segment seal/roll goes down mid-footer) the writer is
  /// poisoned: every later append throws immediately, and the on-disk
  /// durable prefix still ends at the last valid record (recovery scans
  /// truncate the rest).
  void append_batch(std::span<const Event> events);

  /// False once an unrepairable I/O failure poisoned the writer.
  bool healthy() const { return !poisoned_; }

  /// Explicit fsync of the active segment (used by checkpointing: the log
  /// must be durable up to the snapshot offset before the manifest swap).
  void sync();

  /// Deletes sealed segments whose every event index is < `index` (all
  /// replay starts at or after the latest snapshot offset, so segments
  /// wholly below it are dead).  Returns how many files were removed.
  std::size_t prune_segments_below(std::uint64_t index);

  const EventLogConfig& config() const { return config_; }

 private:
  void open_segment(std::uint64_t base_index);
  void seal_segment();
  void write_all(const void* data, std::size_t len);
  void repair_torn_tail();

  EventLogConfig config_;
  LogOpenResult open_result_;
  bool poisoned_ = false;
  int fd_ = -1;
  std::string active_path_;
  std::uint64_t next_index_ = 0;        ///< global event index
  std::uint64_t synced_index_ = 0;      ///< events behind the last good fsync
  std::uint64_t segment_base_ = 0;      ///< first event index of active seg
  std::uint64_t segment_records_ = 0;
  std::uint64_t segment_size_ = 0;      ///< bytes written to active segment
  std::uint32_t segment_crc_ = 0;       ///< running CRC over record CRCs
  std::uint64_t records_since_sync_ = 0;
  SnapshotWriter payload_scratch_;      ///< reused across appends: clear()
  SnapshotWriter record_scratch_;       ///< keeps capacity, no realloc
};

class EventLogReader {
 public:
  /// Validates the directory's segments (CRCs, contiguity, torn tail) and
  /// computes the durable prefix.  Never modifies the files.
  explicit EventLogReader(std::string dir);

  const LogOpenResult& open_result() const { return open_result_; }
  std::uint64_t durable_events() const { return open_result_.durable_events; }

  /// Replays the durable prefix from global event index `from` (inclusive):
  /// decodes records in order and hands each batch tail to `fn` with the
  /// global index of its first event.  Records wholly below `from` are
  /// skipped; a record straddling it is trimmed.
  void replay(std::uint64_t from,
              const std::function<void(std::span<const Event>,
                                       std::uint64_t base_index)>& fn) const;

  /// Convenience: all events in [from, durable_events).
  std::vector<Event> read_from(std::uint64_t from) const;

 private:
  std::string dir_;
  LogOpenResult open_result_;
  std::vector<std::string> segments_;  ///< valid segment paths, in order
};

}  // namespace espice::durability
