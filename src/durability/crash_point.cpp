#include "durability/crash_point.hpp"

namespace espice::durability {

namespace detail {
std::atomic<CrashHook> g_crash_hook{nullptr};
}

void set_crash_hook(CrashHook hook) {
  detail::g_crash_hook.store(hook, std::memory_order_release);
}

}  // namespace espice::durability
