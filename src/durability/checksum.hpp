// CRC32 (IEEE 802.3, polynomial 0xEDB88320) for the durability layer.
//
// Every event-log record, every sealed segment and every snapshot payload
// carries a CRC32 so recovery can distinguish "valid data" from "torn write
// at the crash point" or "bit rot" -- a bad checksum is the signal that
// truncates the log tail (see event_log.hpp) or rejects a snapshot (see
// snapshot.hpp).  Table-driven slice-by-8 (eight bytes folded per step --
// the byte-at-a-time loop serializes on the table lookup and caps out
// around one byte per 3 cycles, which made the checksum the hot spot of
// the append path); no hardware CRC instructions so the value is identical
// on every platform (the log is a portable on-disk format).  Byte access
// only, so the result is endianness-independent too.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace espice::durability {

namespace detail {
/// tables[0] is the classic byte-wise table; tables[k][b] advances a CRC
/// whose next input byte is b through k additional zero bytes, which is
/// what lets eight input bytes fold in one step.
inline const std::array<std::array<std::uint32_t, 256>, 8>& crc32_tables() {
  static const auto tables = [] {
    std::array<std::array<std::uint32_t, 256>, 8> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[0][i] = c;
    }
    for (std::size_t k = 1; k < 8; ++k) {
      for (std::uint32_t i = 0; i < 256; ++i) {
        t[k][i] = (t[k - 1][i] >> 8) ^ t[0][t[k - 1][i] & 0xFFu];
      }
    }
    return t;
  }();
  return tables;
}
}  // namespace detail

/// Incremental update: feed `crc32_init()` for the first chunk, the previous
/// return value for subsequent chunks, `crc32_final()` when done.
inline constexpr std::uint32_t crc32_init() { return 0xFFFFFFFFu; }

inline std::uint32_t crc32_update(std::uint32_t crc, const void* data,
                                  std::size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  const auto& t = detail::crc32_tables();
  while (len >= 8) {
    const std::uint32_t lo =
        crc ^ (static_cast<std::uint32_t>(p[0]) |
               static_cast<std::uint32_t>(p[1]) << 8 |
               static_cast<std::uint32_t>(p[2]) << 16 |
               static_cast<std::uint32_t>(p[3]) << 24);
    crc = t[7][lo & 0xFFu] ^ t[6][(lo >> 8) & 0xFFu] ^
          t[5][(lo >> 16) & 0xFFu] ^ t[4][lo >> 24] ^ t[3][p[4]] ^
          t[2][p[5]] ^ t[1][p[6]] ^ t[0][p[7]];
    p += 8;
    len -= 8;
  }
  const auto& table = detail::crc32_tables()[0];
  for (std::size_t i = 0; i < len; ++i) {
    crc = table[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc;
}

inline constexpr std::uint32_t crc32_final(std::uint32_t crc) {
  return crc ^ 0xFFFFFFFFu;
}

/// One-shot convenience.
inline std::uint32_t crc32(const void* data, std::size_t len) {
  return crc32_final(crc32_update(crc32_init(), data, len));
}

}  // namespace espice::durability
