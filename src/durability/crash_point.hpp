// Fault-injection instrumentation for the durability layer.
//
// The durability code (event log, snapshot store) marks every point where a
// real process death would leave partially-written state on disk:
//
//   ESPICE_CRASH_POINT("log.append.mid_record");
//
// In production the marker is one relaxed load of a null function pointer
// -- effectively free.  The fault-injection harness
// (tests/support/crash_point.hpp) installs a hook that counts hits and, at
// an armed (point, occurrence) pair, simulates the kill: either in-process
// by throwing SimulatedCrash through an exception barrier (the engine's
// destructor then observes exactly the bytes written so far, like a fresh
// process opening the files), or for real via _exit(), leaving the kernel
// to drop whatever was not yet written.
//
// Torn writes: writers that want a byte-level torn tail under test split
// their write in two around a crash point only when a hook is installed
// (crash_hook_armed()), so the production path keeps its single write().
#pragma once

#include <atomic>

namespace espice::durability {

/// Hook signature: called with the crash point's name; may throw (the
/// simulated kill) or return normally (census / not the armed occurrence).
using CrashHook = void (*)(const char* point);

/// Installs (or clears, with nullptr) the process-wide crash hook.  Tests
/// only; call from one thread while no durability code is running.
void set_crash_hook(CrashHook hook);

namespace detail {
extern std::atomic<CrashHook> g_crash_hook;
}

/// True when a hook is installed (writers switch to split-write mode so a
/// mid-write crash point produces a genuinely torn record).
inline bool crash_hook_armed() {
  return detail::g_crash_hook.load(std::memory_order_relaxed) != nullptr;
}

inline void crash_point(const char* name) {
  if (CrashHook hook = detail::g_crash_hook.load(std::memory_order_relaxed)) {
    hook(name);
  }
}

}  // namespace espice::durability

#define ESPICE_CRASH_POINT(name) ::espice::durability::crash_point(name)
