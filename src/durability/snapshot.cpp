#include "durability/snapshot.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <utility>

#include "common/error.hpp"
#include "durability/checksum.hpp"
#include "durability/crash_point.hpp"
#include "durability/io_env.hpp"
#include "durability/serial.hpp"

namespace espice::durability {
namespace fs = std::filesystem;

namespace {

constexpr std::uint32_t kSnapshotMagic = 0x50414E53;   // "SNAP"
constexpr std::uint32_t kManifestMagic = 0x53464E4D;   // "MNFS"
constexpr std::uint32_t kFormatVersion = 1;
constexpr std::size_t kSnapshotHeaderBytes = 28;

std::string errno_detail(const std::string& op, const std::string& path) {
  return op + " failed for '" + path + "': " + std::strerror(errno);
}

std::string snapshot_name(std::uint64_t offset) {
  char name[48];
  std::snprintf(name, sizeof(name), "snap-%020llu.snap",
                static_cast<unsigned long long>(offset));
  return name;
}

/// IoEnv site names for one durable file write, so the fault-injection
/// census can distinguish snapshot payloads from manifest swaps.
struct IoSites {
  const char* open;
  const char* write;
  const char* fsync;
};

/// Writes `buf` to `path` (O_TRUNC), fsyncs, closes.  When a crash hook is
/// installed the write is split around `mid_point` so an in-flight kill
/// leaves a genuinely partial file.
void write_file_durable(const std::string& path,
                        std::span<const std::byte> buf, const char* mid_point,
                        const IoSites& sites) {
  const int fd = io_env().open(sites.open, path.c_str(),
                               O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  ESPICE_CHECK(fd >= 0, ErrorCode::kIo, errno_detail("open", path));
  const auto write_all = [&](const std::byte* p, std::size_t len) {
    while (len > 0) {
      const long n = io_env().write(sites.write, fd, p, len);
      if (n < 0) {
        if (errno == EINTR) continue;
        ::close(fd);
        throw Error(ErrorCode::kIo, errno_detail("write", path));
      }
      p += n;
      len -= static_cast<std::size_t>(n);
    }
  };
  if (crash_hook_armed()) {
    const std::size_t half = buf.size() / 2;
    write_all(buf.data(), half);
    ESPICE_CRASH_POINT(mid_point);
    write_all(buf.data() + half, buf.size() - half);
  } else {
    write_all(buf.data(), buf.size());
  }
  if (io_env().fsync(sites.fsync, fd) != 0) {
    ::close(fd);
    throw Error(ErrorCode::kIo, errno_detail("fsync", path));
  }
  ::close(fd);
}

/// fs::rename through the IoEnv seam; throws espice::Error{kIo} on failure
/// (an injected EIO on the publish step must surface typed, not silently).
void rename_durable(const char* site, const std::string& from,
                    const std::string& to) {
  if (io_env().rename(site, from.c_str(), to.c_str()) != 0) {
    throw Error(ErrorCode::kIo, errno_detail("rename", from));
  }
}

/// Validates and decodes one snap-*.snap file; nullopt (with a damage
/// report) when the header, CRC, or length does not check out.
std::optional<SnapshotStore::Loaded> read_snapshot_file(
    const std::string& path, std::vector<std::string>* damage) {
  const auto bad = [&](const std::string& why) {
    if (damage) damage->push_back("'" + path + "': " + why);
  };
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    bad("cannot open");
    return std::nullopt;
  }
  in.seekg(0, std::ios::end);
  const auto len = static_cast<std::size_t>(in.tellg());
  in.seekg(0, std::ios::beg);
  if (len < kSnapshotHeaderBytes) {
    bad("truncated snapshot header");
    return std::nullopt;
  }
  std::vector<std::byte> buf(len);
  in.read(reinterpret_cast<char*>(buf.data()),
          static_cast<std::streamsize>(len));
  if (!in.good()) {
    bad("cannot read");
    return std::nullopt;
  }

  SnapshotReader r(std::span(buf.data(), kSnapshotHeaderBytes));
  const std::uint32_t magic = r.u32();
  const std::uint32_t version = r.u32();
  const std::uint64_t offset = r.u64();
  const std::uint64_t payload_len = r.u64();
  const std::uint32_t payload_crc = r.u32();
  if (magic != kSnapshotMagic || version != kFormatVersion) {
    bad("bad snapshot header (magic/version)");
    return std::nullopt;
  }
  if (payload_len != len - kSnapshotHeaderBytes) {
    bad("snapshot payload truncated (" +
        std::to_string(len - kSnapshotHeaderBytes) + " of " +
        std::to_string(payload_len) + " bytes)");
    return std::nullopt;
  }
  if (payload_crc !=
      crc32(buf.data() + kSnapshotHeaderBytes, payload_len)) {
    bad("snapshot payload CRC mismatch");
    return std::nullopt;
  }
  SnapshotStore::Loaded loaded;
  loaded.log_offset = offset;
  loaded.payload.assign(buf.begin() + kSnapshotHeaderBytes, buf.end());
  return loaded;
}

/// The manifest names the latest published snapshot; nullopt (with a
/// damage report) when missing or corrupt.
std::optional<std::string> read_manifest(const std::string& dir,
                                         std::vector<std::string>* damage) {
  const std::string path = (fs::path(dir) / "MANIFEST").string();
  const auto bad = [&](const std::string& why) {
    if (damage) damage->push_back("'" + path + "': " + why);
  };
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return std::nullopt;  // no manifest yet: not damage
  std::vector<std::byte> buf;
  {
    in.seekg(0, std::ios::end);
    const auto len = static_cast<std::size_t>(in.tellg());
    in.seekg(0, std::ios::beg);
    buf.resize(len);
    if (len != 0) {
      in.read(reinterpret_cast<char*>(buf.data()),
              static_cast<std::streamsize>(len));
    }
  }
  if (!in.good() || buf.size() < 12) {
    bad("truncated manifest");
    return std::nullopt;
  }
  try {
    SnapshotReader r(std::span(buf.data(), buf.size() - 4));
    const std::uint32_t magic = r.u32();
    const std::uint32_t version = r.u32();
    if (magic != kManifestMagic || version != kFormatVersion) {
      bad("bad manifest header (magic/version)");
      return std::nullopt;
    }
    r.u64();  // log offset (informational; the snapshot header is canonical)
    const std::string name = r.str();
    r.expect_done();
    SnapshotReader crc_r(
        std::span(buf.data() + buf.size() - 4, std::size_t{4}));
    if (crc_r.u32() != crc32(buf.data(), buf.size() - 4)) {
      bad("manifest CRC mismatch");
      return std::nullopt;
    }
    return name;
  } catch (const Error&) {
    bad("corrupt manifest body");
    return std::nullopt;
  }
}

/// All published snapshot files, sorted by offset descending.
std::vector<std::pair<std::uint64_t, std::string>> list_snapshots(
    const std::string& dir) {
  std::vector<std::pair<std::uint64_t, std::string>> out;
  if (!fs::exists(dir)) return out;
  for (const auto& entry : fs::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.size() < 11 || name.rfind("snap-", 0) != 0 ||
        name.substr(name.size() - 5) != ".snap") {
      continue;
    }
    const std::string digits = name.substr(5, name.size() - 10);
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    out.emplace_back(std::stoull(digits), entry.path().string());
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  return out;
}

}  // namespace

SnapshotStore::SnapshotStore(std::string dir) : dir_(std::move(dir)) {
  ESPICE_REQUIRE(!dir_.empty(), "snapshot store: dir must be non-empty");
  std::error_code ec;
  fs::create_directories(dir_, ec);
  ESPICE_CHECK(!ec, ErrorCode::kIo,
               "cannot create snapshot dir '" + dir_ + "'");
}

void SnapshotStore::write(std::uint64_t log_offset,
                          std::span<const std::byte> payload) {
  SnapshotWriter w;
  w.u32(kSnapshotMagic);
  w.u32(kFormatVersion);
  w.u64(log_offset);
  w.u64(payload.size());
  w.u32(crc32(payload.data(), payload.size()));
  w.bytes(payload.data(), payload.size());

  const std::string name = snapshot_name(log_offset);
  const std::string final_path = (fs::path(dir_) / name).string();
  const std::string tmp_path = final_path + ".tmp";
  write_file_durable(tmp_path, std::span(w.buffer()), "snapshot.write.mid",
                     {"snapshot.open", "snapshot.write", "snapshot.fsync"});
  rename_durable("snapshot.rename", tmp_path, final_path);
  fsync_dir("snapshot.dir.fsync", dir_);

  ESPICE_CRASH_POINT("snapshot.before_manifest");

  SnapshotWriter m;
  m.u32(kManifestMagic);
  m.u32(kFormatVersion);
  m.u64(log_offset);
  m.str(name);
  m.u32(crc32(m.buffer().data(), m.position()));
  const std::string manifest = (fs::path(dir_) / "MANIFEST").string();
  const std::string manifest_tmp = manifest + ".tmp";
  write_file_durable(manifest_tmp, std::span(m.buffer()),
                     "snapshot.manifest.mid",
                     {"manifest.open", "manifest.write", "manifest.fsync"});
  rename_durable("manifest.rename", manifest_tmp, manifest);
  fsync_dir("snapshot.dir.fsync", dir_);

  ESPICE_CRASH_POINT("snapshot.after_manifest");
}

std::optional<SnapshotStore::Loaded> SnapshotStore::load_latest(
    std::vector<std::string>* damage) const {
  if (const auto name = read_manifest(dir_, damage)) {
    const std::string path = (fs::path(dir_) / *name).string();
    if (auto loaded = read_snapshot_file(path, damage)) return loaded;
    if (damage) {
      damage->push_back("manifest points at invalid snapshot '" + *name +
                        "'; falling back to directory scan");
    }
  }
  for (const auto& [offset, path] : list_snapshots(dir_)) {
    if (auto loaded = read_snapshot_file(path, damage)) return loaded;
  }
  return std::nullopt;
}

std::size_t SnapshotStore::prune_below(std::uint64_t log_offset) {
  std::size_t removed = 0;
  for (const auto& [offset, path] : list_snapshots(dir_)) {
    if (offset >= log_offset) continue;
    std::error_code ec;
    if (fs::remove(path, ec)) removed += 1;
  }
  if (removed != 0) fsync_dir("snapshot.dir.fsync", dir_);
  return removed;
}

}  // namespace espice::durability
