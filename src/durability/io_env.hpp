// Pluggable I/O environment: the seam between the durability layer and the
// operating system.
//
// Every file operation issued by EventLogWriter, SnapshotStore and the CSV
// loader goes through the process-wide IoEnv -- open / read / write / fsync
// / ftruncate / rename, each tagged with a stable *site* name such as
// "log.write" or "snapshot.fsync".  The default environment is the raw
// syscalls (one virtual dispatch per syscall, invisible next to the syscall
// itself); tests swap in a fault-injecting environment
// (tests/support/io_fault.hpp) that fails a chosen site on its N-th
// occurrence with a chosen errno, which is how the chaos oracle drives
// ENOSPC / EIO / short-write / fsync-failure schedules through the engine
// without touching the durability code itself.
//
// Sites are census-enumerable the same way crash points are (see
// crash_point.hpp): run a workload under a counting environment once,
// enumerate the (site, count) pairs it touched, then sweep faults over
// them.  Site names in use today:
//
//   log.open  log.write  log.fsync  log.ftruncate  log.dir.fsync
//   snapshot.open  snapshot.write  snapshot.fsync  snapshot.rename
//   manifest.open  manifest.write  manifest.fsync  manifest.rename
//   snapshot.dir.fsync  csv.open  csv.read
//
// Contract for overrides: behave like the syscall -- return the syscall's
// result convention (-1 + errno on failure, short counts allowed for
// read/write).  Callers keep their own EINTR loops and error translation,
// so an override never needs to throw.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace espice::durability {

class IoEnv {
 public:
  virtual ~IoEnv() = default;

  /// ::open(path, flags, mode).  `site` tags the call location.
  virtual int open(const char* site, const char* path, int flags,
                   unsigned mode);
  /// ::read(fd, buf, len); may return a short count.
  virtual long read(const char* site, int fd, void* buf, std::size_t len);
  /// ::write(fd, buf, len); may return a short count.
  virtual long write(const char* site, int fd, const void* buf,
                     std::size_t len);
  /// ::fsync(fd).
  virtual int fsync(const char* site, int fd);
  /// ::ftruncate(fd, len).
  virtual int ftruncate(const char* site, int fd, std::int64_t len);
  /// ::rename(from, to).
  virtual int rename(const char* site, const char* from, const char* to);
};

/// The process-wide environment.  Returns the real-syscall environment
/// unless a test installed an override via set_io_env().
IoEnv& io_env();

/// Installs `env` as the process-wide environment; nullptr restores the
/// real-syscall default.  Pair install/restore around each test (RAII in
/// tests/support/io_fault.hpp) -- the pointer must outlive its installation.
void set_io_env(IoEnv* env);

/// Best-effort directory sync (makes a just-created/renamed entry durable).
/// Failures are ignored by design: every caller pairs it with a durable
/// write of the entry's *content*, and a lost directory entry is exactly
/// the torn state recovery already tolerates.
void fsync_dir(const char* site, const std::string& dir);

/// Reads a whole file through the environment (EINTR-safe read loop).
/// Throws espice::Error{kIo} with the errno detail on open/read failure.
std::vector<char> read_file_bytes(const char* open_site, const char* read_site,
                                  const std::string& path);

}  // namespace espice::durability
