#include "durability/io_env.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>

#include "common/error.hpp"

namespace espice::durability {

namespace {

std::string errno_detail() {
  return std::string(std::strerror(errno)) + " (errno " +
         std::to_string(errno) + ")";
}

// IoEnv's virtual defaults ARE the real environment, so the default
// instance is just a plain IoEnv and fault environments override only the
// operations they care about.
IoEnv g_real_env;
std::atomic<IoEnv*> g_env{&g_real_env};

}  // namespace

int IoEnv::open(const char*, const char* path, int flags, unsigned mode) {
  return ::open(path, flags, mode);
}

long IoEnv::read(const char*, int fd, void* buf, std::size_t len) {
  return ::read(fd, buf, len);
}

long IoEnv::write(const char*, int fd, const void* buf, std::size_t len) {
  return ::write(fd, buf, len);
}

int IoEnv::fsync(const char*, int fd) { return ::fsync(fd); }

int IoEnv::ftruncate(const char*, int fd, std::int64_t len) {
  return ::ftruncate(fd, static_cast<off_t>(len));
}

int IoEnv::rename(const char*, const char* from, const char* to) {
  return ::rename(from, to);
}

IoEnv& io_env() { return *g_env.load(std::memory_order_acquire); }

void set_io_env(IoEnv* env) {
  g_env.store(env != nullptr ? env : &g_real_env, std::memory_order_release);
}

void fsync_dir(const char* site, const std::string& dir) {
  IoEnv& env = io_env();
  const int fd =
      env.open(site, dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC, 0);
  if (fd < 0) return;
  (void)env.fsync(site, fd);
  ::close(fd);
}

std::vector<char> read_file_bytes(const char* open_site, const char* read_site,
                                  const std::string& path) {
  IoEnv& env = io_env();
  const int fd = env.open(open_site, path.c_str(), O_RDONLY | O_CLOEXEC, 0);
  ESPICE_CHECK(fd >= 0, ErrorCode::kIo,
               "cannot open " + path + ": " + errno_detail());
  std::vector<char> bytes;
  char buf[1 << 16];
  for (;;) {
    const long n = env.read(read_site, fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      const std::string detail = errno_detail();
      ::close(fd);
      throw Error(ErrorCode::kIo, "read failed on " + path + ": " + detail);
    }
    if (n == 0) break;
    bytes.insert(bytes.end(), buf, buf + n);
  }
  ::close(fd);
  return bytes;
}

}  // namespace espice::durability
