// Overload detector (paper Section 3.4).
//
// Periodically inspects the operator's input queue and decides
//   * whether shedding must be active:   qsize > f * qmax,  qmax = LB / l(p)
//   * how many partitions each window gets:  rho = ceil(N / (qmax - f*qmax))
//   * how many events to drop per partition: x = delta * psize / R,
//     delta = R - th
// where l(p) is the (EWMA-smoothed) per-event processing latency of the
// *unshedded* operator, th = 1/l(p) its throughput, and R the measured input
// rate.  All quantities are measured online; nothing is assumed known.
//
// One pragmatic extension beyond the paper (documented in DESIGN.md): when
// the queue has already grown past the f*qmax watermark, we add a drain term
// that schedules the excess to be shed over one latency-bound period.
// Without it a queue that filled up *before* shedding became active would
// stay near qmax indefinitely (the paper's x only cancels the input surplus,
// it never drains backlog).
#pragma once

#include <cstddef>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "core/shedder.hpp"

namespace espice {

struct OverloadDetectorConfig {
  double latency_bound = 1.0;  ///< LB in seconds
  double f = 0.8;              ///< activation watermark factor in [0, 1)
  /// Normalized window size N in events (drives rho / psize).
  std::size_t window_size_events = 1;
  /// Detector sampling period in (virtual) seconds.
  double tick_period = 0.01;
  /// EWMA weight for l(p) and R estimates.
  double ewma_alpha = 0.05;
  /// Shedding deactivates when qsize falls below this fraction of f*qmax.
  /// The default keeps a narrow hysteresis band right under the watermark,
  /// so under sustained overload the queue saws around f*qmax and the event
  /// latency rides near f*LB, as in the paper's Figure 7.
  double deactivate_fraction = 0.9;
  /// Enables the backlog drain term (see file comment).
  bool drain_backlog = true;

  void validate() const {
    ESPICE_REQUIRE(latency_bound > 0.0, "latency bound must be positive");
    ESPICE_REQUIRE(f >= 0.0 && f < 1.0, "f must be in [0, 1)");
    ESPICE_REQUIRE(window_size_events > 0, "window size must be positive");
    ESPICE_REQUIRE(tick_period > 0.0, "tick period must be positive");
  }
};

class OverloadDetector {
 public:
  explicit OverloadDetector(OverloadDetectorConfig config);

  /// Feeds the measured full (unshedded-equivalent) processing cost of one
  /// event, in seconds.  Updates the l(p) estimate.
  void observe_processing_cost(double seconds);

  /// Feeds an event arrival; used to estimate the input rate R.
  void observe_arrival(double ts);

  /// Runs one detector tick: inspects the queue size and returns the command
  /// for the load shedder.  Call every `tick_period` of simulated time.
  DropCommand tick(std::size_t queue_size);

  // --- Introspection (for tests, benches and reports) -------------------
  bool active() const { return active_; }
  double estimated_lp() const { return lp_.value_or(0.0); }
  double estimated_rate() const { return rate_.value_or(0.0); }
  /// qmax = LB / l(p); 0 until l(p) is known.
  double qmax() const;
  const OverloadDetectorConfig& config() const { return config_; }

  /// Snapshot / restore of the running estimates (durability layer).  The
  /// restoring detector must be constructed with the same config.
  void serialize(durability::SnapshotWriter& w) const;
  void restore(durability::SnapshotReader& r);

 private:
  OverloadDetectorConfig config_;
  Ewma lp_;
  Ewma rate_;
  double last_arrival_ts_ = -1.0;
  bool active_ = false;
};

}  // namespace espice
