#include "core/multi_query_operator.hpp"

#include <algorithm>
#include <cmath>

#include "durability/serial.hpp"

namespace espice {

MultiQueryOperator::MultiQueryOperator(MultiQueryOperatorConfig config,
                                       MatchCallback on_match)
    : config_(std::move(config)),
      on_match_(std::move(on_match)),
      windows_(config_.window, /*track_masks=*/true),
      detector_([&] {
        auto d = config_.detector;
        d.window_size_events = std::max<std::size_t>(d.window_size_events, 1);
        return d;
      }()) {
  config_.validate();
  ESPICE_REQUIRE(on_match_ != nullptr, "match callback must be set");

  queries_.reserve(config_.queries.size());
  for (const auto& q : config_.queries) {
    queries_.emplace_back(IncrementalMatcher(
        q.pattern, q.selection, q.consumption, q.max_matches_per_window));
  }
  bool any_incremental = false;
  for (auto& q : queries_) {
    feed_.add(&q.matcher);
    any_incremental = any_incremental || q.matcher.stream_incremental();
  }
  // All-window-scan query sets take finalize()'s legacy path anyway, and
  // tumbling windows have no overlap to share runs across; skip the
  // per-event feed bookkeeping then.
  if (any_incremental && windows_can_overlap(config_.window)) {
    windows_.set_kept_feed(&feed_);
  }

  std::size_t n = config_.n_positions;
  if (n == 0 && config_.window.span_kind == WindowSpan::kCount) {
    n = config_.window.span_events;
  }
  if (n > 0) {
    begin_training(n);
  }
}

void MultiQueryOperator::begin_training(std::size_t n_positions) {
  ModelBuilderConfig mb;
  mb.num_types = config_.num_types;
  mb.n_positions = n_positions;
  mb.bin_size = std::min(config_.bin_size, n_positions);
  for (auto& q : queries_) q.builder.emplace(mb);
  predicted_ws_ = static_cast<double>(n_positions);
  phase_ = Phase::kTraining;
}

void MultiQueryOperator::push(const Event& e) {
  // Watermark punctuations are control records owned by the engine's
  // event-time stage; a window-level operator ignores them.
  if (is_watermark(e)) return;
  ESPICE_REQUIRE(e.type < config_.num_types, "event type outside the universe");
  if (phase_ != Phase::kShedding) {
    // Sizing/training: every query keeps everything.
    auto& memberships = windows_.offer(e);
    ++events_;
    memberships_ += memberships.size();
    for (const auto& m : memberships) {
      windows_.keep(m, e, all_queries_mask(queries_.size()));
      ++memberships_kept_;
    }
  } else {
    push_shedding(e);
  }
  close_windows();
}

void MultiQueryOperator::push_shedding(const Event& e) {
  if (is_watermark(e)) return;
  auto& memberships = windows_.offer(e);
  ++events_;
  const std::size_t mcount = memberships.size();
  memberships_ += mcount;
  if (mcount == 0) return;
  pos_scratch_.resize(mcount);
  for (std::size_t i = 0; i < mcount; ++i) {
    pos_scratch_[i] = memberships[i].position;
  }
  const std::size_t words = keep_bitmap_words(mcount);
  bits_scratch_.resize(words * queries_.size());
  for (std::size_t q = 0; q < queries_.size(); ++q) {
    // Position shares are fed *pre-drop* per query so they stay unbiased by
    // the shedders' own decisions (same as EspiceOperator).
    for (std::size_t i = 0; i < mcount; ++i) {
      queries_[q].builder->observe_position(e.type, pos_scratch_[i],
                                            predicted_ws_);
    }
    // One block-scoring call per query decides its whole membership set
    // (identical decisions, in order, to per-membership should_drop()).
    queries_[q].shedder->score_block(e, pos_scratch_.data(), mcount,
                                     predicted_ws_,
                                     bits_scratch_.data() + q * words);
  }
  // Transpose the per-query bitmaps into per-membership masks.
  for (std::size_t i = 0; i < mcount; ++i) {
    QueryMask mask = 0;
    for (std::size_t q = 0; q < queries_.size(); ++q) {
      if (keep_bit(bits_scratch_.data() + q * words, i)) {
        mask |= QueryMask{1} << q;
      }
    }
    // Every query shed it -> physical drop: never buffered, never matched.
    if (mask != 0) {
      windows_.keep(memberships[i], e, mask);
      ++memberships_kept_;
    }
  }
}

void MultiQueryOperator::push_block(std::span<const Event> block) {
  bool any_watermark = false;
  for (const Event& e : block) {
    ESPICE_REQUIRE(is_watermark(e) || e.type < config_.num_types,
                   "event type outside the universe");
    if (is_watermark(e)) any_watermark = true;
  }
  if (any_watermark) {
    // Punctuations are control records the per-event path ignores; the
    // bulk offer below must never route them into windows.  Rare (the
    // engine's event-time stage consumes punctuations upstream), so the
    // scalar path is fine.
    for (const Event& e : block) push(e);
    return;
  }
  std::size_t i = 0;
  while (i < block.size()) {
    if (phase_ == Phase::kShedding) {
      // Shedding is the terminal phase: score the rest of the block.
      // Windows are drained per event so a mid-block model refresh
      // (rebuild_every_windows) lands exactly where per-event execution
      // puts it.
      for (; i < block.size(); ++i) {
        push_shedding(block[i]);
        close_windows();
      }
      return;
    }
    // Sizing/training: all-keep, so the window manager's bulk path applies.
    // Chunk at the close horizon -- close_windows() can flip the phase at a
    // window boundary, and the flip must take effect for the very next
    // event, exactly as in per-event execution.
    const auto chunk = static_cast<std::size_t>(std::min<std::uint64_t>(
        block.size() - i, windows_.close_free_horizon()));
    const std::uint64_t kept = windows_.offer_keep_all_block(
        block.subspan(i, chunk), all_queries_mask(queries_.size()));
    events_ += chunk;
    memberships_ += kept;
    memberships_kept_ += kept;
    close_windows();
    i += chunk;
  }
}

void MultiQueryOperator::close_windows() {
  for (const WindowView& w : windows_.drain_closed()) {
    ++windows_closed_;
    switch (phase_) {
      case Phase::kSizing: {
        sizing_size_sum_ += static_cast<double>(w.size());
        ++sizing_count_;
        break;
      }
      case Phase::kTraining:
      case Phase::kShedding:
        break;
    }

    const bool shedding = phase_ == Phase::kShedding;
    for (std::size_t q = 0; q < queries_.size(); ++q) {
      QueryState& state = queries_[q];
      // During sizing/training every event carries an all-queries mask, so
      // the unfiltered view is each query's view; filtering is only needed
      // once per-query drops can differ.
      const WindowView view =
          shedding ? filter_view_for_query(w, q, state.filter_scratch) : w;
      const auto matches = state.matcher.finalize(view);
      state.matches += matches.size();
      if (phase_ == Phase::kTraining) {
        state.builder->observe_window(view);
        for (const auto& m : matches) state.builder->observe_match(m, w.size());
      } else if (shedding) {
        // Positions were fed pre-drop in push(); count the window and the
        // match evidence here.
        state.builder->count_window();
        for (const auto& m : matches) state.builder->observe_match(m, w.size());
      }
      for (const auto& m : matches) on_match_(q, m);
    }

    if (phase_ == Phase::kSizing) {
      if (sizing_count_ >= config_.sizing_windows) {
        const auto n = static_cast<std::size_t>(std::max<long>(
            1,
            std::lround(sizing_size_sum_ / static_cast<double>(sizing_count_))));
        begin_training(n);
      }
    } else if (phase_ == Phase::kTraining) {
      if (queries_.front().builder->windows_observed() >=
          config_.training_windows) {
        build_and_arm();
      }
    } else if (config_.rebuild_every_windows > 0 &&
               ++windows_since_rebuild_ >= config_.rebuild_every_windows) {
      refresh_models();
    }
  }
}

void MultiQueryOperator::build_and_arm() {
  std::vector<std::shared_ptr<const UtilityModel>> models;
  models.reserve(queries_.size());
  for (auto& q : queries_) {
    auto model = q.builder->build();
    q.shedder = std::make_unique<EspiceShedder>(model, config_.exact_amount);
    q.shedder->set_exploration(config_.exploration);
    models.push_back(std::move(model));
  }
  coordinator_.set_models(std::move(models));
  if (!config_.query_weights.empty()) {
    coordinator_.set_weights(config_.query_weights);
  }
  // Refine the detector's notion of the (shared) window size.
  auto detector_config = config_.detector;
  detector_config.window_size_events =
      static_cast<std::size_t>(predicted_ws_);
  detector_ = OverloadDetector(detector_config);
  phase_ = Phase::kShedding;
}

void MultiQueryOperator::refresh_models() {
  std::vector<std::shared_ptr<const UtilityModel>> models;
  models.reserve(queries_.size());
  for (auto& q : queries_) {
    auto model = q.builder->build();
    q.shedder->set_model(model);
    models.push_back(std::move(model));
  }
  coordinator_.set_models(std::move(models));
  if (!config_.query_weights.empty()) {
    coordinator_.set_weights(config_.query_weights);
  }
  windows_since_rebuild_ = 0;
}

void MultiQueryOperator::on_tick(double /*now*/, std::size_t queue_size) {
  if (phase_ != Phase::kShedding) return;
  const DropCommand cmd = detector_.tick(queue_size);
  if (!cmd.active) {
    for (auto& q : queries_) q.shedder->on_command(cmd);
    return;
  }
  // One shared budget, split where it loses the least utility.  The
  // detector's x is per window PARTITION while the coordinator reasons
  // over whole-window CDTs, so scale to the per-window total for the split
  // and back to per-partition amounts for the shedder commands.
  const double partitions = static_cast<double>(cmd.partitions);
  last_split_ = coordinator_.apportion(cmd.x * partitions);
  for (std::size_t q = 0; q < queries_.size(); ++q) {
    DropCommand qcmd;
    qcmd.active = last_split_[q] > 0.0;
    qcmd.x = last_split_[q] / partitions;
    qcmd.partitions = cmd.partitions;
    queries_[q].shedder->on_command(qcmd);
  }
}

void MultiQueryOperator::observe_cost(double seconds) {
  detector_.observe_processing_cost(seconds);
}

void MultiQueryOperator::finish() {
  windows_.close_all();
  close_windows();
}

bool MultiQueryOperator::shedding_active() const {
  if (phase_ != Phase::kShedding) return false;
  for (const auto& q : queries_) {
    if (q.shedder->active()) return true;
  }
  return false;
}

const UtilityModel* MultiQueryOperator::model(std::size_t q) const {
  ESPICE_REQUIRE(q < queries_.size(), "query index out of range");
  return queries_[q].shedder ? &queries_[q].shedder->model() : nullptr;
}

MultiQueryStats MultiQueryOperator::stats() const {
  MultiQueryStats s;
  s.events = events_;
  s.memberships = memberships_;
  s.memberships_kept = memberships_kept_;
  s.windows_closed = windows_closed_;
  s.shedding_active = shedding_active();
  s.queries.reserve(queries_.size());
  for (std::size_t q = 0; q < queries_.size(); ++q) {
    MultiQueryStats::PerQuery pq;
    pq.name = config_.queries[q].name.empty()
                  ? "q" + std::to_string(q)
                  : config_.queries[q].name;
    pq.matches = queries_[q].matches;
    pq.decisions = queries_[q].shedder ? queries_[q].shedder->decisions() : 0;
    pq.drops = queries_[q].shedder ? queries_[q].shedder->drops() : 0;
    s.queries.push_back(std::move(pq));
  }
  return s;
}

void MultiQueryOperator::serialize(durability::SnapshotWriter& w) {
  w.u8(static_cast<std::uint8_t>(phase_));
  w.u64(sizing_count_);
  w.f64(sizing_size_sum_);
  w.f64(predicted_ws_);
  w.u64(windows_since_rebuild_);
  w.vec_f64(last_split_);
  w.u64(events_);
  w.u64(memberships_);
  w.u64(memberships_kept_);
  w.u64(windows_closed_);
  windows_.serialize(w);
  w.u64(queries_.size());
  for (auto& q : queries_) {
    q.matcher.serialize(w);
    w.boolean(q.builder.has_value());
    if (q.builder) q.builder->serialize(w);
    w.boolean(q.shedder != nullptr);
    if (q.shedder) q.shedder->serialize(w);
    w.u64(q.matches);
  }
  // Last: the detector is re-instantiated from predicted_ws_ on restore
  // (mirroring build_and_arm()), so its estimates must follow that state.
  detector_.serialize(w);
}

void MultiQueryOperator::restore(durability::SnapshotReader& r) {
  const std::uint8_t phase = r.u8();
  ESPICE_CHECK(phase <= static_cast<std::uint8_t>(Phase::kShedding),
               ErrorCode::kCorruptSnapshot, "unknown operator phase");
  phase_ = static_cast<Phase>(phase);
  sizing_count_ = static_cast<std::size_t>(r.u64());
  sizing_size_sum_ = r.f64();
  predicted_ws_ = r.f64();
  windows_since_rebuild_ = static_cast<std::size_t>(r.u64());
  last_split_ = r.vec_f64();
  events_ = r.u64();
  memberships_ = r.u64();
  memberships_kept_ = r.u64();
  windows_closed_ = r.u64();
  windows_.restore(r);
  ESPICE_CHECK(r.u64() == queries_.size(), ErrorCode::kCorruptSnapshot,
               "operator snapshot query count disagrees with the config");
  for (auto& q : queries_) {
    q.matcher.restore(r);
    if (r.boolean()) {
      if (!q.builder) {
        // Mirror begin_training(): the builder config derives from the
        // (restored) normalized window size.
        ModelBuilderConfig mb;
        mb.num_types = config_.num_types;
        mb.n_positions = static_cast<std::size_t>(predicted_ws_);
        mb.bin_size = std::min(config_.bin_size, mb.n_positions);
        q.builder.emplace(mb);
      }
      q.builder->restore(r);
    } else {
      q.builder.reset();
    }
    if (r.boolean()) {
      if (!q.shedder) {
        // Placeholder model; restore() swaps in the serialized one.
        auto placeholder = std::make_shared<const UtilityModel>(
            config_.num_types, 1, 1,
            std::vector<std::uint8_t>(config_.num_types, 0),
            std::vector<double>(config_.num_types, 0.0));
        q.shedder = std::make_unique<EspiceShedder>(std::move(placeholder),
                                                    config_.exact_amount);
      }
      q.shedder->restore(r);
    } else {
      q.shedder.reset();
    }
    q.matches = r.u64();
  }
  if (phase_ == Phase::kShedding) {
    // Mirror build_and_arm(): detector sized to the shared window, then
    // its running estimates restored; coordinator re-binds the restored
    // per-query models.
    auto detector_config = config_.detector;
    detector_config.window_size_events =
        static_cast<std::size_t>(predicted_ws_);
    detector_ = OverloadDetector(detector_config);
    std::vector<std::shared_ptr<const UtilityModel>> models;
    models.reserve(queries_.size());
    for (auto& q : queries_) models.push_back(q.shedder->model_ptr());
    coordinator_.set_models(std::move(models));
    if (!config_.query_weights.empty()) {
      coordinator_.set_weights(config_.query_weights);
    }
  }
  detector_.restore(r);
}

}  // namespace espice
