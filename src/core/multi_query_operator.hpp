// MultiQueryOperator: N queries over one shared window engine.
//
// Real CEP middleware rarely runs one pattern per operator: many concurrent
// workloads watch the same stream.  Running N independent EspiceOperators
// costs N times the ingestion, windowing and buffering work; this operator
// shares all of it.  One WindowManager/EventStore routes and buffers every
// event once, each registered query owns only what is genuinely per-query:
//
//   * a Matcher (pattern + selection/consumption policies),
//   * a ModelBuilder and the UtilityModel trained from *its* matches,
//   * an EspiceShedder making its own keep/drop decision per membership.
//
// Shedding is per query via keep masks (cep/window.hpp): query q's decision
// sets bit q of the membership's QueryMask; the event is physically dropped
// only when every query sheds it.  Thus query A shedding its low-utility
// events can never starve query B, which sees its own filtered view of
// every window (filter_view_for_query) -- bit-identical to the window B
// would have formed running alone.
//
// The control plane is shared: ONE OverloadDetector watches the host's
// input queue (the queue is shared, so the surplus to cancel is global) and
// its per-tick drop amount x is split across queries by the ShedCoordinator
// so drops land on the globally lowest-utility mass (see
// core/shed_coordinator.hpp).
//
// Lifecycle mirrors EspiceOperator (sizing -> training -> shedding); all
// queries share the phase because they share the windows.  Drift
// retraining is not wired here yet: models refresh periodically via
// `rebuild_every_windows` instead (per-query drift detection over shared
// windows is future work).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "cep/incremental_matcher.hpp"
#include "cep/pattern.hpp"
#include "cep/window.hpp"
#include "core/espice_shedder.hpp"
#include "core/model_builder.hpp"
#include "core/overload_detector.hpp"
#include "core/shed_coordinator.hpp"

namespace espice {

/// One registered query: pattern + policies (windowing is shared).
struct MultiQuerySpec {
  std::string name;
  Pattern pattern;
  SelectionPolicy selection = SelectionPolicy::kFirst;
  ConsumptionPolicy consumption = ConsumptionPolicy::kConsumed;
  std::size_t max_matches_per_window = 1;
};

struct MultiQueryOperatorConfig {
  WindowSpec window;                   ///< shared by every query
  std::vector<MultiQuerySpec> queries;

  // --- model (shared sizing; per-query tables) -----------------------------
  std::size_t num_types = 0;           ///< M: event-type universe size
  std::size_t bin_size = 1;            ///< bs
  std::size_t n_positions = 0;         ///< N; 0 = derive (sizing / span)
  std::size_t sizing_windows = 100;
  std::size_t training_windows = 500;

  // --- control plane -------------------------------------------------------
  OverloadDetectorConfig detector;     ///< window_size_events is filled in
  bool exact_amount = false;
  double exploration = 0.05;
  /// Refresh every query's model from its accumulated statistics every this
  /// many closed windows while shedding (0 = never).
  std::size_t rebuild_every_windows = 2000;
  /// Per-query value weights for the coordinator (empty = all equal).
  std::vector<double> query_weights;

  void validate() const {
    ESPICE_REQUIRE(!queries.empty(), "need at least one query");
    ESPICE_REQUIRE(queries.size() <= kMaxQueriesPerWindowManager,
                   "too many queries for one shared window manager");
    ESPICE_REQUIRE(num_types > 0, "num_types must be set");
    ESPICE_REQUIRE(training_windows > 0, "training_windows must be positive");
    ESPICE_REQUIRE(
        query_weights.empty() || query_weights.size() == queries.size(),
        "one weight per query (or none)");
    window.validate();
    for (const auto& q : queries) q.pattern.validate();
  }
};

/// Lifetime counters of one multi-query run.
struct MultiQueryStats {
  std::uint64_t events = 0;
  std::uint64_t memberships = 0;        ///< (event, window) pairs offered
  /// Pairs physically kept (some query wanted the event).  Memory gauge:
  /// memberships - memberships_kept events never entered the store.
  std::uint64_t memberships_kept = 0;
  std::uint64_t windows_closed = 0;
  bool shedding_active = false;

  struct PerQuery {
    std::string name;
    std::uint64_t matches = 0;
    std::uint64_t decisions = 0;  ///< shedder decisions (0 until armed)
    std::uint64_t drops = 0;      ///< memberships this query shed
  };
  std::vector<PerQuery> queries;
};

class MultiQueryOperator {
 public:
  enum class Phase { kSizing, kTraining, kShedding };

  /// Called per detected complex event with the detecting query's index.
  using MatchCallback =
      std::function<void(std::size_t query, const ComplexEvent&)>;

  MultiQueryOperator(MultiQueryOperatorConfig config, MatchCallback on_match);

  // The shared window manager's kept feed points at the per-query matchers;
  // moving the operator would dangle it.
  MultiQueryOperator(const MultiQueryOperator&) = delete;
  MultiQueryOperator& operator=(const MultiQueryOperator&) = delete;

  /// Consumes the next stream event (in order): one offer() into the shared
  /// window manager, one keep/drop decision per (membership, query).
  void push(const Event& e);

  /// Batched variant: consumes a whole block of stream events, bit-identical
  /// in every output (matches, stats, model evolution) to pushing them one
  /// by one.  Sizing/training blocks batch through the window manager's
  /// all-keep bulk path, chunked at close_free_horizon() so phase
  /// transitions (which trigger on window closings) land on the same event
  /// as in per-event execution; shedding blocks score each event's
  /// membership set per query with one EspiceShedder::score_block call over
  /// flat arrays instead of a virtual should_drop() per (membership, query).
  void push_block(std::span<const Event> block);

  /// Flushes all open windows (end of stream).
  void finish();

  /// Host signals (see EspiceOperator): processing cost, queue size, arrival.
  void observe_cost(double seconds);
  void on_tick(double now, std::size_t queue_size);
  void observe_arrival(double ts) { detector_.observe_arrival(ts); }

  // --- introspection -------------------------------------------------------
  Phase phase() const { return phase_; }
  std::size_t query_count() const { return config_.queries.size(); }
  bool shedding_active() const;
  /// Query q's model (nullptr until training completes).
  const UtilityModel* model(std::size_t q) const;
  /// Per-query split of the most recent active detector command's drop
  /// budget, in expected events per WINDOW (the detector's per-partition x
  /// times its partition count); empty before shedding first activates.
  const std::vector<double>& last_split() const { return last_split_; }
  const ShedCoordinator& coordinator() const { return coordinator_; }
  MultiQueryStats stats() const;

  /// Snapshot / restore (durability layer): phase machinery, the shared
  /// window manager, per-query matcher/builder/shedder state and the
  /// detector estimates.  Non-const because the window manager compacts
  /// consumed views first.  The restoring operator must be constructed
  /// with the same config; the coordinator re-binds to the restored
  /// models, so no derived state travels.
  void serialize(durability::SnapshotWriter& w);
  void restore(durability::SnapshotReader& r);

 private:
  void begin_training(std::size_t n_positions);
  void build_and_arm();
  void refresh_models();
  void close_windows();
  void push_shedding(const Event& e);

  MultiQueryOperatorConfig config_;
  MatchCallback on_match_;
  WindowManager windows_;
  OverloadDetector detector_;
  ShedCoordinator coordinator_;

  /// Everything owned per registered query.
  struct QueryState {
    explicit QueryState(IncrementalMatcher m) : matcher(std::move(m)) {}
    /// Stream-level matcher, fed this query's keep decisions (bit q of the
    /// shared manager's masks) through feed_.
    IncrementalMatcher matcher;
    std::optional<ModelBuilder> builder;
    std::unique_ptr<EspiceShedder> shedder;
    std::vector<KeptEntry> filter_scratch;  ///< backs the per-query view
    std::uint64_t matches = 0;
  };
  std::vector<QueryState> queries_;
  MatcherFeed feed_;

  /// Block-scoring scratch: one event's membership positions and the
  /// per-query keep bitmaps (queries x ceil(memberships / 64) words).
  std::vector<std::uint32_t> pos_scratch_;
  std::vector<std::uint64_t> bits_scratch_;

  Phase phase_ = Phase::kSizing;
  std::size_t sizing_count_ = 0;
  double sizing_size_sum_ = 0.0;
  double predicted_ws_ = 0.0;
  std::size_t windows_since_rebuild_ = 0;
  std::vector<double> last_split_;

  std::uint64_t events_ = 0;
  std::uint64_t memberships_ = 0;
  std::uint64_t memberships_kept_ = 0;
  std::uint64_t windows_closed_ = 0;
};

}  // namespace espice
