#include "core/model_builder.hpp"

#include <algorithm>
#include <cmath>

#include "durability/serial.hpp"

namespace espice {

ModelBuilder::ModelBuilder(ModelBuilderConfig config) : config_(config) {
  config_.validate();
  cols_ = (config_.n_positions + config_.bin_size - 1) / config_.bin_size;
  match_counts_.assign(config_.num_types * cols_, 0.0);
  pos_counts_.assign(config_.num_types * cols_, 0.0);
}

template <typename AddFn>
void ModelBuilder::for_each_scaled_col(std::uint32_t position, double ws,
                                       AddFn add) const {
  ESPICE_ASSERT(ws > 0.0, "window size must be positive");
  const double n = static_cast<double>(config_.n_positions);
  const double scale = n / ws;  // 1/sf in the paper's notation
  double lo = std::min(static_cast<double>(position) * scale, n - 1e-9);
  double hi = std::min(static_cast<double>(position + 1) * scale, n);
  if (hi <= lo) hi = std::min(lo + 1e-9, n);
  // Spread one observation over the covered normalized positions so that the
  // total weight contributed by a full window is always ~N position units:
  // scaling up (ws < N) smears one event across several cells, scaling down
  // (ws > N) lets several events share a cell fractionally.
  std::size_t c = static_cast<std::size_t>(lo) / config_.bin_size;
  c = std::min(c, cols_ - 1);
  for (; c < cols_; ++c) {
    const double c_lo = static_cast<double>(c * config_.bin_size);
    const double c_hi =
        std::min(c_lo + static_cast<double>(config_.bin_size), n);
    const double overlap = std::min(hi, c_hi) - std::max(lo, c_lo);
    if (overlap <= 0.0) break;
    add(c, overlap);
  }
}

void ModelBuilder::observe_window(const WindowView& w) {
  if (w.size() == 0) return;
  const auto ws = static_cast<double>(w.size());
  for (std::size_t i = 0; i < w.kept_count(); ++i) {
    const Event& e = w.kept(i);
    // Always-on: window contents come from external streams and index the
    // count arrays by type; model building is off the hot path.
    ESPICE_REQUIRE(e.type < config_.num_types, "event type outside universe");
    for_each_scaled_col(w.pos(i), ws, [&](std::size_t col, double weight) {
      pos_counts_[e.type * cols_ + col] += weight;
    });
  }
  windows_weight_ += 1.0;
  ++windows_observed_;
}

void ModelBuilder::observe_position(EventTypeId type, std::uint32_t position,
                                    double ws) {
  ESPICE_REQUIRE(type < config_.num_types, "event type outside universe");
  if (ws <= 0.0) return;
  for_each_scaled_col(position, ws, [&](std::size_t col, double weight) {
    pos_counts_[type * cols_ + col] += weight;
  });
}

void ModelBuilder::count_window() {
  windows_weight_ += 1.0;
  ++windows_observed_;
}

void ModelBuilder::observe_match(const ComplexEvent& ce, std::size_t ws) {
  if (ws == 0) return;
  for (const Constituent& c : ce.constituents) {
    ESPICE_REQUIRE(c.event.type < config_.num_types,
                   "event type outside universe");
    for_each_scaled_col(c.position, static_cast<double>(ws),
                        [&](std::size_t col, double weight) {
                          match_counts_[c.event.type * cols_ + col] += weight;
                        });
  }
  ++matches_observed_;
}

void ModelBuilder::decay(double factor) {
  ESPICE_REQUIRE(factor > 0.0 && factor <= 1.0, "decay factor must be in (0, 1]");
  for (double& v : match_counts_) v *= factor;
  for (double& v : pos_counts_) v *= factor;
  windows_weight_ *= factor;
}

void ModelBuilder::reset() {
  std::fill(match_counts_.begin(), match_counts_.end(), 0.0);
  std::fill(pos_counts_.begin(), pos_counts_.end(), 0.0);
  windows_weight_ = 0.0;
  windows_observed_ = 0;
  matches_observed_ = 0;
}

std::size_t ModelBuilder::windows_observed() const { return windows_observed_; }

std::shared_ptr<const UtilityModel> ModelBuilder::build() const {
  ESPICE_REQUIRE(windows_weight_ > 0.0,
                 "cannot build a model before observing any window");

  // Utilities: the paper defines U(T, P) as "the probability of the event to
  // be part of the detected complex events"; the natural estimator is the
  // conditional probability  match_count(T,P) / occurrence_count(T,P)
  // (both counts use identical position scaling, so the ratio is stable
  // under variable window sizes).  Cells that ever contributed are floored
  // at 1 so that rounding cannot conflate them with never-contributing
  // cells; multi-match windows with zero consumption can push the raw ratio
  // above 1, hence the clamp.
  std::vector<std::uint8_t> ut(match_counts_.size(), 0);
  for (std::size_t i = 0; i < match_counts_.size(); ++i) {
    if (match_counts_[i] <= 0.0 || pos_counts_[i] <= 0.0) continue;
    const double ratio = match_counts_[i] / pos_counts_[i];
    const long scaled = std::lround(ratio * kMaxUtility);
    ut[i] = static_cast<std::uint8_t>(std::clamp<long>(scaled, 1, kMaxUtility));
  }

  // Position shares: expected events of each type per bin column per window.
  std::vector<double> shares(pos_counts_.size(), 0.0);
  for (std::size_t i = 0; i < pos_counts_.size(); ++i) {
    shares[i] = pos_counts_[i] / windows_weight_;
  }

  return std::make_shared<UtilityModel>(config_.num_types, config_.n_positions,
                                        config_.bin_size, std::move(ut),
                                        std::move(shares));
}

void ModelBuilder::serialize(durability::SnapshotWriter& w) const {
  w.u64(config_.num_types);
  w.u64(config_.n_positions);
  w.u64(config_.bin_size);
  w.vec_f64(match_counts_);
  w.vec_f64(pos_counts_);
  w.f64(windows_weight_);
  w.u64(windows_observed_);
  w.u64(matches_observed_);
}

void ModelBuilder::restore(durability::SnapshotReader& r) {
  ESPICE_CHECK(r.u64() == config_.num_types &&
                   r.u64() == config_.n_positions &&
                   r.u64() == config_.bin_size,
               ErrorCode::kCorruptSnapshot,
               "model builder snapshot dimensions disagree with the config");
  match_counts_ = r.vec_f64();
  pos_counts_ = r.vec_f64();
  ESPICE_CHECK(match_counts_.size() == config_.num_types * cols_ &&
                   pos_counts_.size() == config_.num_types * cols_,
               ErrorCode::kCorruptSnapshot,
               "model builder snapshot table size mismatch");
  windows_weight_ = r.f64();
  windows_observed_ = static_cast<std::size_t>(r.u64());
  matches_observed_ = static_cast<std::size_t>(r.u64());
}

}  // namespace espice
