// Statistical retraining trigger (the paper's Section 3.6 leaves "a
// statistical approach that triggers the need to retrain the model" as
// future work; this implements it).
//
// Idea: the utility model is only as good as the stability of the
// type-at-position distribution it learned.  The detector maintains two
// windowed histograms of (type, bin-column) occurrences -- the reference
// (what the model was trained on, seeded from the model's position shares)
// and a sliding recent histogram -- and compares them with the Jensen-
// Shannon divergence.  When the divergence exceeds a threshold for
// `patience` consecutive evaluations, retraining is signalled.
//
// The detector is deliberately independent of match results: under heavy
// shedding the detected complex events are biased by the shedder itself,
// but the *input* composition is not.
#pragma once

#include <cstddef>
#include <vector>

#include "cep/event.hpp"
#include "common/error.hpp"
#include "core/utility_model.hpp"

namespace espice {

struct DriftDetectorConfig {
  /// Events per evaluation batch.
  std::size_t batch_size = 20'000;
  /// Jensen-Shannon divergence (in bits, range [0, 1]) above which a batch
  /// counts as drifted.
  double divergence_threshold = 0.1;
  /// Consecutive drifted batches before retraining is signalled.
  std::size_t patience = 2;

  void validate() const {
    ESPICE_REQUIRE(batch_size > 0, "batch size must be positive");
    ESPICE_REQUIRE(divergence_threshold > 0.0 && divergence_threshold < 1.0,
                   "divergence threshold must be in (0, 1)");
    ESPICE_REQUIRE(patience > 0, "patience must be positive");
  }
};

class DriftDetector {
 public:
  /// The reference distribution is taken from `model`'s position shares
  /// (what the utility model believes the windows look like).
  DriftDetector(const UtilityModel& model, DriftDetectorConfig config = {});

  /// Feeds one (event, window-position) observation from the live stream.
  /// Returns true when retraining is due (at batch boundaries only).
  bool observe(const Event& e, std::uint32_t position, double predicted_ws);

  /// Resets the drift state after the caller retrained the model.
  /// Adopts `model`'s shares as the new reference.
  void rebase(const UtilityModel& model);

  /// Most recent batch divergence (bits); 0 before the first batch.
  double last_divergence() const { return last_divergence_; }
  std::size_t drifted_batches() const { return consecutive_drifted_; }

 private:
  void load_reference(const UtilityModel& model);
  double finish_batch();

  DriftDetectorConfig config_;
  std::size_t num_types_;
  std::size_t cols_;
  std::size_t bin_size_;
  std::size_t n_positions_;
  std::vector<double> reference_;  // normalized [type][col]
  std::vector<double> recent_;     // raw counts [type][col]
  std::size_t batch_fill_ = 0;
  std::size_t consecutive_drifted_ = 0;
  double last_divergence_ = 0.0;
};

}  // namespace espice
