#include "core/overload_detector.hpp"

#include <algorithm>
#include <cmath>

#include "durability/serial.hpp"

namespace espice {

OverloadDetector::OverloadDetector(OverloadDetectorConfig config)
    : config_(config), lp_(config.ewma_alpha), rate_(config.ewma_alpha) {
  config_.validate();
}

void OverloadDetector::observe_processing_cost(double seconds) {
  ESPICE_ASSERT(seconds > 0.0, "processing cost must be positive");
  lp_.observe(seconds);
}

void OverloadDetector::observe_arrival(double ts) {
  if (last_arrival_ts_ >= 0.0 && ts > last_arrival_ts_) {
    rate_.observe(1.0 / (ts - last_arrival_ts_));
  }
  last_arrival_ts_ = ts;
}

double OverloadDetector::qmax() const {
  const double lp = lp_.value_or(0.0);
  if (lp <= 0.0) return 0.0;
  return config_.latency_bound / lp;
}

DropCommand OverloadDetector::tick(std::size_t queue_size) {
  DropCommand cmd;
  const double q_max = qmax();
  if (q_max <= 0.0 || !rate_.seeded()) {
    // Nothing measured yet; cannot make an informed decision.
    active_ = false;
    return cmd;
  }

  const double watermark = config_.f * q_max;
  const auto qsize = static_cast<double>(queue_size);

  if (!active_ && qsize > watermark) {
    active_ = true;
  } else if (active_ && qsize < config_.deactivate_fraction * watermark) {
    active_ = false;
  }
  cmd.active = active_;
  if (!active_) return cmd;

  // Dropping interval: the buffer between the watermark and qmax is
  // (1-f)*qmax events; partitions must not exceed it (Section 3.4).
  const double buffer = std::max(q_max - watermark, 1.0);
  const auto n = static_cast<double>(config_.window_size_events);
  const auto rho =
      static_cast<std::size_t>(std::max(1.0, std::ceil(n / buffer)));
  const double psize = n / static_cast<double>(rho);

  // Dropping amount: x = delta * psize / R with delta = R - th.
  const double rate = rate_.value();
  const double th = 1.0 / lp_.value();
  const double delta = std::max(0.0, rate - th);
  double x = delta * psize / rate;

  if (config_.drain_backlog && qsize > watermark) {
    // Drain the backlog above the watermark over one LB period: the queue
    // holds (qsize - watermark) surplus events; spread their removal over
    // the partitions that will pass through the shedder in LB seconds.
    const double partitions_per_lb =
        std::max(1.0, rate * config_.latency_bound / psize);
    x += (qsize - watermark) / partitions_per_lb;
  }

  cmd.partitions = rho;
  cmd.x = x;
  return cmd;
}

void OverloadDetector::serialize(durability::SnapshotWriter& w) const {
  w.f64(lp_.raw_value());
  w.boolean(lp_.seeded());
  w.f64(rate_.raw_value());
  w.boolean(rate_.seeded());
  w.f64(last_arrival_ts_);
  w.boolean(active_);
}

void OverloadDetector::restore(durability::SnapshotReader& r) {
  const double lp = r.f64();
  lp_.restore(lp, r.boolean());
  const double rate = r.f64();
  rate_.restore(rate, r.boolean());
  last_arrival_ts_ = r.f64();
  active_ = r.boolean();
}

}  // namespace espice
