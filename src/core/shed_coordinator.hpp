// Shed coordinator: apportions one shared drop budget across N queries.
//
// In multi-query execution a single overload detector watches the shared
// input queue and computes one total drop amount x per window (the queue is
// shared, so the surplus to cancel is global).  Dropping has *per-query*
// consequences though: an event one query's model scores worthless can be a
// constituent another query needs.  The coordinator therefore splits x so
// the drops land on the globally lowest-utility (event, query) mass:
//
//   1. each query's utility model yields an aggregate CDT -- the expected
//      number of its per-window events with utility <= u,
//   2. the coordinator finds the smallest global threshold u* whose summed
//      mass across queries covers x (with fractional interpolation at u* so
//      the expected total is exactly x),
//   3. query q's share x_q is its own mass below that threshold.
//
// Equalizing the utility threshold across queries is the greedy optimum for
// this separable objective: any reallocation moves budget from a
// lower-utility drop to a higher-utility one.  Consequently a query whose
// events are all high-utility contributes ~no mass below u* and is assigned
// ~no drops -- shedding one query's junk cannot starve a query that values
// those events.
//
// Caveat (documented contract): utilities are per-query *normalized*
// percentages (each table's max is 100), so cross-query comparison assumes
// one detected complex event is worth the same in every query.  Hosts that
// value queries differently can pre-scale with set_weights().
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "core/cdt.hpp"
#include "core/utility_model.hpp"

namespace espice {

class ShedCoordinator {
 public:
  ShedCoordinator() = default;

  /// (Re)binds the per-query models and rebuilds their aggregate CDTs.
  /// Entries may be nullptr (query not yet trained): such a query receives
  /// no drop budget.  Call again whenever a model is retrained.
  void set_models(std::vector<std::shared_ptr<const UtilityModel>> models);

  /// Per-query relative value weights (default: all 1).  A query with
  /// weight w has its utilities scaled by w on the shared axis, so higher-
  /// weighted queries shed later.  Size must match set_models().
  void set_weights(std::vector<double> weights);

  /// Splits a total expected per-window drop amount `x` into per-query
  /// amounts (see file comment).  Returns one x_q >= 0 per query; the sum
  /// is min(x, total droppable mass).
  std::vector<double> apportion(double x) const;

  /// The global utility threshold the last-computed split equalizes at
  /// (diagnostic; recomputed per apportion() call).
  int threshold_for(double x) const;

  std::size_t queries() const { return cdts_.size(); }
  /// Expected per-window event mass of query q (0 for untrained queries).
  double query_mass(std::size_t q) const;

 private:
  /// Summed mass with (weighted) utility <= u across all queries.
  double global_mass_at(int u) const;
  /// Query q's expected per-window events with weighted utility <= u.
  double mass_at(std::size_t q, int u) const;

  std::vector<std::shared_ptr<const UtilityModel>> models_;  // keeps CDTs valid
  std::vector<Cdt> cdts_;       ///< aggregate (single-partition) CDT per query
  std::vector<bool> trained_;   ///< has a model (contributes mass)
  std::vector<double> weights_;
};

}  // namespace espice
