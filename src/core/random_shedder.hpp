// Uniform random shedder: drops every event with the probability required to
// remove x events per partition, ignoring utilities entirely.  The paper
// mentions it as comprehensively outperformed by eSPICE; we keep it as a
// sanity floor for the ablation benches.
#pragma once

#include <algorithm>
#include <cstdint>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/shedder.hpp"

namespace espice {

class RandomShedder final : public Shedder {
 public:
  /// `window_size_events` is the normalized window size N, used to convert
  /// the per-partition amount x into a drop probability.
  explicit RandomShedder(std::size_t window_size_events, std::uint64_t seed = 43)
      : window_size_events_(window_size_events), rng_(seed) {
    ESPICE_REQUIRE(window_size_events_ > 0, "window size must be positive");
  }

  bool should_drop(const Event& e, std::uint32_t, double) override {
    if (is_watermark(e)) return false;  // punctuations are never shed
    const bool drop = active_ && rng_.bernoulli(drop_prob_);
    count_decision(drop);
    return drop;
  }

  void on_command(const DropCommand& cmd) override {
    active_ = cmd.active;
    if (!active_) {
      drop_prob_ = 0.0;
      return;
    }
    const double per_window = cmd.x * static_cast<double>(cmd.partitions);
    drop_prob_ = std::clamp(
        per_window / static_cast<double>(window_size_events_), 0.0, 1.0);
  }

  const char* name() const override { return "random"; }
  double drop_probability() const { return drop_prob_; }

 private:
  std::size_t window_size_events_;
  Rng rng_;
  double drop_prob_ = 0.0;
  bool active_ = false;
};

}  // namespace espice
