#include "core/drift_detector.hpp"

#include <algorithm>
#include <cmath>

namespace espice {

namespace {

// Jensen-Shannon divergence between two normalized distributions, in bits.
double js_divergence(const std::vector<double>& p, const std::vector<double>& q) {
  ESPICE_ASSERT(p.size() == q.size(), "distribution size mismatch");
  auto kl_to_mixture = [&](const std::vector<double>& a,
                           const std::vector<double>& b) {
    double kl = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (a[i] <= 0.0) continue;
      const double m = 0.5 * (a[i] + b[i]);
      kl += a[i] * std::log2(a[i] / m);
    }
    return kl;
  };
  return 0.5 * kl_to_mixture(p, q) + 0.5 * kl_to_mixture(q, p);
}

void normalize(std::vector<double>& v) {
  double sum = 0.0;
  for (double x : v) sum += x;
  if (sum <= 0.0) return;
  for (double& x : v) x /= sum;
}

}  // namespace

DriftDetector::DriftDetector(const UtilityModel& model,
                             DriftDetectorConfig config)
    : config_(config),
      num_types_(model.num_types()),
      cols_(model.cols()),
      bin_size_(model.bin_size()),
      n_positions_(model.n_positions()) {
  config_.validate();
  load_reference(model);
  recent_.assign(num_types_ * cols_, 0.0);
}

void DriftDetector::load_reference(const UtilityModel& model) {
  ESPICE_REQUIRE(model.num_types() == num_types_ && model.cols() == cols_,
                 "rebased model must keep the table dimensions");
  reference_.resize(num_types_ * cols_);
  for (std::size_t t = 0; t < num_types_; ++t) {
    for (std::size_t c = 0; c < cols_; ++c) {
      reference_[t * cols_ + c] =
          model.share_cell(static_cast<EventTypeId>(t), c);
    }
  }
  normalize(reference_);
}

bool DriftDetector::observe(const Event& e, std::uint32_t position,
                            double predicted_ws) {
  ESPICE_ASSERT(e.type < num_types_, "event type outside the model universe");
  // Same position scaling as the utility model.
  const double norm = std::min(
      static_cast<double>(position) * static_cast<double>(n_positions_) /
          std::max(predicted_ws, 1.0),
      static_cast<double>(n_positions_) - 1e-9);
  const std::size_t col =
      std::min(static_cast<std::size_t>(norm) / bin_size_, cols_ - 1);
  recent_[e.type * cols_ + col] += 1.0;
  if (++batch_fill_ < config_.batch_size) return false;

  const double divergence = finish_batch();
  if (divergence > config_.divergence_threshold) {
    ++consecutive_drifted_;
  } else {
    consecutive_drifted_ = 0;
  }
  return consecutive_drifted_ >= config_.patience;
}

double DriftDetector::finish_batch() {
  std::vector<double> recent = recent_;
  normalize(recent);
  last_divergence_ = js_divergence(reference_, recent);
  std::fill(recent_.begin(), recent_.end(), 0.0);
  batch_fill_ = 0;
  return last_divergence_;
}

void DriftDetector::rebase(const UtilityModel& model) {
  load_reference(model);
  std::fill(recent_.begin(), recent_.end(), 0.0);
  batch_fill_ = 0;
  consecutive_drifted_ = 0;
  last_divergence_ = 0.0;
}

}  // namespace espice
