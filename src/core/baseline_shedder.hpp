// BL: the baseline load shedder the paper compares against (Section 4.1
// "Baseline"), modelled after He et al. [12] and weighted-sampling stream
// shedders [29].
//
// BL assigns each event *type* a utility proportional to its repetition in
// the pattern and inversely proportional to its frequency in windows; it then
// decides how many events to drop from each type and drops them by uniform
// sampling within the type.  It deliberately ignores the order/position of
// events -- that is the gap eSPICE exploits.
#pragma once

#include <cstdint>
#include <vector>

#include "cep/pattern.hpp"
#include "common/rng.hpp"
#include "core/shedder.hpp"

namespace espice {

class BaselineShedder final : public Shedder {
 public:
  /// `pattern` provides per-type repetition counts; `type_frequencies` gives
  /// the expected number of events of each type per window (measured during
  /// training); `window_size_events` is the normalized window size N.
  BaselineShedder(const Pattern& pattern, std::vector<double> type_frequencies,
                  std::size_t window_size_events, std::uint64_t seed = 42);

  bool should_drop(const Event& e, std::uint32_t position,
                   double predicted_ws) override;
  void on_command(const DropCommand& cmd) override;
  const char* name() const override { return "BL"; }

  /// Per-type pattern-repetition counts derived from the pattern (visible
  /// for tests).
  const std::vector<double>& repetitions() const { return repetitions_; }
  /// Current per-type drop probabilities (empty-ish while inactive).
  const std::vector<double>& drop_probabilities() const { return drop_prob_; }

  /// Computes per-type repetition counts for `num_types` types from a
  /// pattern: each sequence element adds 1 to every type it can match; the
  /// trigger of a trigger-any adds 1; every explicit any-candidate adds 1
  /// (an "any type" candidate set adds 1 to all types).
  static std::vector<double> pattern_repetitions(const Pattern& pattern,
                                                 std::size_t num_types);

 private:
  void recompute(double x_per_window);

  std::vector<double> repetitions_;
  std::vector<double> freq_;
  std::vector<double> drop_prob_;
  std::size_t window_size_events_;
  Rng rng_;
  bool active_ = false;
};

}  // namespace espice
