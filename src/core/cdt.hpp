// CDT: cumulative utility occurrences O(u) and the utility threshold
// (paper Section 3.3, Algorithm 1; Section 3.4 "Dropping Interval").
//
// For a window partition, CDT(u) is the expected number of events per window
// whose utility is <= u, computed by summing the position shares S(T, P) of
// every (type, position) cell whose utility equals u and accumulating in
// ascending utility order.  The utility threshold for dropping x events is
// the smallest u with CDT(u) >= x (Algorithm 2, lines 1-7).
//
// When the window is split into rho partitions, every partition gets its own
// CDT over its slice of the position space.
#pragma once

#include <array>
#include <cstddef>
#include <vector>

#include "core/utility_model.hpp"

namespace espice {

class Cdt {
 public:
  Cdt() { table_.fill(0.0); }

  /// O(u): expected events per window(-partition) with utility <= u.
  double at(int u) const {
    ESPICE_ASSERT(u >= 0 && u <= kMaxUtility, "utility out of range");
    return table_[static_cast<std::size_t>(u)];
  }

  /// Total expected events in the partition (== O(100)).
  double total() const { return table_[kMaxUtility]; }

  /// Smallest utility threshold uth with O(uth) >= x.  If even dropping
  /// everything cannot reach x, returns kMaxUtility (drop all).
  int threshold(double x) const;

  /// Builds the CDTs of all `partitions` equal slices of the model's
  /// normalized position space (Algorithm 1, generalized to partitions).
  static std::vector<Cdt> build_partitions(const UtilityModel& model,
                                           std::size_t partitions);

 private:
  std::array<double, kMaxUtility + 1> table_;
};

}  // namespace espice
