#include "core/f_advisor.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <numeric>

#include "core/cdt.hpp"

namespace espice {

int low_utility_class_boundary(const UtilityModel& model) {
  // Share-weighted histogram of utilities.
  std::array<double, kMaxUtility + 1> hist{};
  for (std::size_t t = 0; t < model.num_types(); ++t) {
    for (std::size_t c = 0; c < model.cols(); ++c) {
      const auto type = static_cast<EventTypeId>(t);
      hist[static_cast<std::size_t>(model.utility_cell(type, c))] +=
          model.share_cell(type, c);
    }
  }
  const double total = std::accumulate(hist.begin(), hist.end(), 0.0);
  if (total <= 0.0) return 0;

  // Otsu: choose the boundary maximizing between-class variance.
  double sum_all = 0.0;
  for (int u = 0; u <= kMaxUtility; ++u) {
    sum_all += static_cast<double>(u) * hist[static_cast<std::size_t>(u)];
  }
  double w0 = 0.0;
  double sum0 = 0.0;
  double best_sigma = -1.0;
  int best_u = 0;
  for (int u = 0; u < kMaxUtility; ++u) {
    w0 += hist[static_cast<std::size_t>(u)];
    if (w0 <= 0.0) continue;
    const double w1 = total - w0;
    if (w1 <= 0.0) break;
    sum0 += static_cast<double>(u) * hist[static_cast<std::size_t>(u)];
    const double mu0 = sum0 / w0;
    const double mu1 = (sum_all - sum0) / w1;
    const double sigma = w0 * w1 * (mu0 - mu1) * (mu0 - mu1);
    if (sigma > best_sigma) {
      best_sigma = sigma;
      best_u = u;
    }
  }
  return best_u;
}

FAdvice suggest_f(const UtilityModel& model, double qmax, double x,
                  double f_min, double f_max, double step) {
  ESPICE_REQUIRE(qmax > 0.0, "qmax must be positive");
  ESPICE_REQUIRE(step > 0.0 && f_min <= f_max, "invalid f scan range");

  const int boundary = low_utility_class_boundary(model);
  const auto n = static_cast<double>(model.n_positions());

  FAdvice best;
  best.low_class_boundary = boundary;
  double best_slack = -1.0;

  for (double f = f_max; f >= f_min - 1e-12; f -= step) {
    const double buffer = std::max(qmax * (1.0 - f), 1.0);
    const auto rho =
        static_cast<std::size_t>(std::max(1.0, std::ceil(n / buffer)));
    const auto cdts = Cdt::build_partitions(model, rho);
    // Worst partition: the least expected low-class events.
    double worst = cdts.front().at(boundary);
    for (const Cdt& cdt : cdts) worst = std::min(worst, cdt.at(boundary));
    if (worst >= x) {
      best.f = f;
      best.partitions = rho;
      best.feasible = true;
      return best;  // scanning from high f: first hit is the largest f
    }
    if (worst > best_slack) {
      best_slack = worst;
      best.f = f;
      best.partitions = rho;
    }
  }
  return best;
}

}  // namespace espice
