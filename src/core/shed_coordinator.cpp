#include "core/shed_coordinator.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace espice {

void ShedCoordinator::set_models(
    std::vector<std::shared_ptr<const UtilityModel>> models) {
  models_ = std::move(models);
  cdts_.assign(models_.size(), Cdt{});
  trained_.assign(models_.size(), false);
  for (std::size_t q = 0; q < models_.size(); ++q) {
    if (models_[q] == nullptr) continue;
    // Aggregate (single-partition) CDT: the whole normalized window is one
    // slice -- partition-level detail does not change the cross-query split.
    cdts_[q] = Cdt::build_partitions(*models_[q], 1).front();
    trained_[q] = true;
  }
  if (weights_.size() != models_.size()) {
    weights_.assign(models_.size(), 1.0);
  }
}

void ShedCoordinator::set_weights(std::vector<double> weights) {
  ESPICE_REQUIRE(weights.size() == models_.size(),
                 "one weight per registered query required");
  for (const double w : weights) {
    ESPICE_REQUIRE(w > 0.0, "query weights must be positive");
  }
  weights_ = std::move(weights);
}

double ShedCoordinator::mass_at(std::size_t q, int u) const {
  if (!trained_[q]) return 0.0;
  // Weighted utility w*ut <= u  <=>  ut <= floor(u / w)  (utilities are
  // integers).
  const double scaled = std::floor(static_cast<double>(u) / weights_[q]);
  const int ut = std::min(kMaxUtility, static_cast<int>(scaled));
  return ut < 0 ? 0.0 : cdts_[q].at(ut);
}

double ShedCoordinator::global_mass_at(int u) const {
  double total = 0.0;
  for (std::size_t q = 0; q < cdts_.size(); ++q) total += mass_at(q, u);
  return total;
}

double ShedCoordinator::query_mass(std::size_t q) const {
  ESPICE_REQUIRE(q < cdts_.size(), "query index out of range");
  return trained_[q] ? cdts_[q].total() : 0.0;
}

int ShedCoordinator::threshold_for(double x) const {
  const double wmax =
      weights_.empty() ? 1.0 : *std::max_element(weights_.begin(), weights_.end());
  const int u_max = static_cast<int>(
      std::ceil(static_cast<double>(kMaxUtility) * std::max(1.0, wmax)));
  for (int u = 0; u <= u_max; ++u) {
    if (global_mass_at(u) >= x) return u;
  }
  return u_max;
}

std::vector<double> ShedCoordinator::apportion(double x) const {
  std::vector<double> out(cdts_.size(), 0.0);
  if (out.empty() || x <= 0.0) return out;

  const int u_star = threshold_for(x);
  const double below = u_star > 0 ? global_mass_at(u_star - 1) : 0.0;
  const double at = global_mass_at(u_star);
  if (at <= 0.0) return out;  // nothing droppable anywhere
  // Fraction of the threshold-utility mass needed so the expected total is
  // exactly x (1.0 when x exceeds all droppable mass).
  const double frac =
      at > below ? std::clamp((x - below) / (at - below), 0.0, 1.0) : 1.0;
  for (std::size_t q = 0; q < cdts_.size(); ++q) {
    const double q_below = u_star > 0 ? mass_at(q, u_star - 1) : 0.0;
    const double q_at = mass_at(q, u_star);
    out[q] = q_below + frac * (q_at - q_below);
  }
  return out;
}

}  // namespace espice
