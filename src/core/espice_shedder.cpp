#include "core/espice_shedder.hpp"

#include <algorithm>
#include <climits>

#include "durability/serial.hpp"

// The vectorized score_block kernel targets AVX2 on x86-64 with GCC/Clang
// function-level target attributes, so the translation unit itself builds
// without -mavx2 and the binary still runs on pre-AVX2 machines (runtime
// cpuid dispatch, scalar path retained).
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define ESPICE_X86_SIMD 1
#include <immintrin.h>
#endif

namespace espice {

namespace {

#if ESPICE_X86_SIMD
/// AVX2 flat-path block scorer.  Keep iff ut[base + pos] > thr[pos] - boost
/// -- exactly decide()'s fast path when no RNG can be consumed (boundary
/// fraction 1.0 everywhere because exact_amount is off, exploration off):
/// decide() drops on u + boost < thr and on u + boost == thr (frac >= 1.0
/// short-circuits the Bernoulli draw), i.e. keeps strictly above.  Eight
/// positions per iteration: gather the utility bytes (scale-1 gather reads
/// 4 bytes per lane, so ut carries 3 bytes of tail padding; low byte
/// masked out) and the per-position thresholds, one signed 32-bit compare,
/// sign-bit movemask straight into the keep word.  Returns false without
/// touching counters when any position falls outside the flat arrays --
/// the general path's math differs there, so the caller reruns the whole
/// block scalar.
__attribute__((target("avx2"))) bool score_flat_avx2(
    const std::uint8_t* ut, const int* thr, std::uint32_t base,
    std::uint32_t np, int boost, const std::uint32_t* positions,
    std::size_t n, std::uint64_t* keep_bits, std::uint64_t* dropped) {
  const __m256i vbase = _mm256_set1_epi32(static_cast<int>(base));
  const __m256i vnpm1 = _mm256_set1_epi32(static_cast<int>(np - 1));
  const __m256i vboost = _mm256_set1_epi32(boost);
  const __m256i vff = _mm256_set1_epi32(0xFF);
  std::uint64_t word = 0;
  std::uint64_t drops = 0;
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    if (i != 0 && i % 64 == 0) {
      keep_bits[i / 64 - 1] = word;
      word = 0;
    }
    const __m256i pos = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(positions + i));
    // Unsigned pos <= np - 1 via min-equality; any lane beyond the flat
    // arrays aborts to the scalar path.
    const __m256i inrange =
        _mm256_cmpeq_epi32(_mm256_min_epu32(pos, vnpm1), pos);
    if (_mm256_movemask_epi8(inrange) != -1) return false;
    const __m256i idx = _mm256_add_epi32(pos, vbase);
    const __m256i u = _mm256_and_si256(
        _mm256_i32gather_epi32(reinterpret_cast<const int*>(ut), idx, 1),
        vff);
    const __m256i t =
        _mm256_sub_epi32(_mm256_i32gather_epi32(thr, pos, 4), vboost);
    const auto keep = static_cast<unsigned>(
        _mm256_movemask_ps(_mm256_castsi256_ps(_mm256_cmpgt_epi32(u, t))));
    word |= static_cast<std::uint64_t>(keep) << (i % 64);
    drops += 8u - static_cast<unsigned>(__builtin_popcount(keep));
  }
  for (; i < n; ++i) {  // scalar tail, same compare as the vector lanes
    if (i != 0 && i % 64 == 0) {
      keep_bits[i / 64 - 1] = word;
      word = 0;
    }
    const std::uint32_t p = positions[i];
    if (p >= np) return false;
    if (static_cast<int>(ut[base + p]) > thr[p] - boost) {
      word |= std::uint64_t{1} << (i % 64);
    } else {
      ++drops;
    }
  }
  keep_bits[(n - 1) / 64] = word;
  *dropped = drops;
  return true;
}
#endif  // ESPICE_X86_SIMD

}  // namespace

EspiceShedder::EspiceShedder(std::shared_ptr<const UtilityModel> model,
                             bool exact_amount, std::uint64_t seed)
    : model_(std::move(model)), exact_amount_(exact_amount), rng_(seed) {
  ESPICE_REQUIRE(model_ != nullptr, "eSPICE shedder needs a utility model");
  rebuild_ut_flat();
}

void EspiceShedder::set_exploration(double fraction) {
  ESPICE_REQUIRE(fraction >= 0.0 && fraction < 1.0,
                 "exploration fraction must be in [0, 1)");
  exploration_ = fraction;
}

void EspiceShedder::set_model(std::shared_ptr<const UtilityModel> model) {
  ESPICE_REQUIRE(model != nullptr, "eSPICE shedder needs a utility model");
  model_ = std::move(model);
  cdt_cache_.clear();
  rebuild_ut_flat();
  if (active_) {
    // Recompute thresholds under the new model with the last command.
    DropCommand cmd;
    cmd.active = true;
    cmd.partitions = partitions_;
    cmd.x = last_x_;
    on_command(cmd);
  }
}

void EspiceShedder::rebuild_ut_flat() {
  // Pre-expand the UT's bin indirection: one byte per (type, normalized
  // position).  For the fast-path ws (== N) an event at integral position p
  // covers exactly cell p / bin_size, so this reproduces
  // model_->utility(type, p, N) verbatim.
  const std::size_t n = model_->n_positions();
  const std::size_t types = model_->num_types();
  n_as_ws_ = static_cast<double>(n);
  // 3 tail bytes keep the AVX2 kernel's 4-byte scale-1 gathers of the last
  // entries inside the allocation (values never read: low byte masked).
  ut_flat_.assign(types * n + 3, 0);
  for (std::size_t t = 0; t < types; ++t) {
    for (std::size_t p = 0; p < n; ++p) {
      ut_flat_[t * n + p] = static_cast<std::uint8_t>(
          model_->utility_cell(static_cast<EventTypeId>(t), p / model_->bin_size()));
    }
  }
  // The kernel's gather indices are signed 32-bit; a model too large for
  // them (no realistic UT is) just pins the instance to the scalar path.
  flat_simd_ok_ =
      n > 0 && types * n + 3 <= static_cast<std::size_t>(INT_MAX);
}

bool EspiceShedder::simd_supported() {
#if ESPICE_X86_SIMD
  static const bool ok = __builtin_cpu_supports("avx2") != 0;
  return ok;
#else
  return false;
#endif
}

const std::vector<Cdt>& EspiceShedder::cdts_for(std::size_t partitions) {
  if (cdt_cache_.size() <= partitions) cdt_cache_.resize(partitions + 1);
  std::vector<Cdt>& slot = cdt_cache_[partitions];
  if (slot.empty()) slot = Cdt::build_partitions(*model_, partitions);
  return slot;
}

void EspiceShedder::rebuild_flat_thresholds() {
  // Broadcast the per-partition thresholds over the normalized position
  // space: partition of integral position p is the same expression the
  // general path evaluates per event (partition boundaries can be
  // fractional, but at integral norms the two agree exactly).
  const std::size_t n = model_->n_positions();
  pos_threshold_.resize(n);
  pos_boundary_.resize(n);
  for (std::size_t p = 0; p < n; ++p) {
    // Exactly the general path's expression, evaluated at norm == p.
    const auto part = std::min(
        static_cast<std::size_t>(static_cast<double>(p) *
                                 static_cast<double>(partitions_) /
                                 static_cast<double>(n)),
        partitions_ - 1);
    pos_threshold_[p] = thresholds_[part];
    pos_boundary_[p] = boundary_drop_[part];
  }
}

void EspiceShedder::on_command(const DropCommand& cmd) {
  active_ = cmd.active;
  if (!active_) {
    thresholds_.clear();
    boundary_drop_.clear();
    pos_threshold_.clear();
    pos_boundary_.clear();
    return;
  }
  ESPICE_ASSERT(cmd.partitions > 0, "command with zero partitions");
  partitions_ = cmd.partitions;
  last_x_ = cmd.x;
  const auto& cdts = cdts_for(partitions_);
  thresholds_.resize(partitions_);
  boundary_drop_.resize(partitions_);
  for (std::size_t p = 0; p < partitions_; ++p) {
    const int uth = cdts[p].threshold(cmd.x);
    thresholds_[p] = uth;
    double frac = 1.0;
    if (exact_amount_) {
      const double below = uth > 0 ? cdts[p].at(uth - 1) : 0.0;
      const double at = cdts[p].at(uth);
      if (at > below && cmd.x > below) {
        frac = std::min(1.0, (cmd.x - below) / (at - below));
      } else if (cmd.x <= below) {
        frac = 1.0;  // threshold() already minimal; defensive default
      }
    }
    boundary_drop_[p] = frac;
  }
  rebuild_flat_thresholds();
}

bool EspiceShedder::decide(EventTypeId type, std::uint32_t position,
                           double predicted_ws) {
  int u;
  int threshold;
  double frac;
  const std::size_t n = model_->n_positions();
  if (predicted_ws == n_as_ws_ && position < n) {
    // Flat fast path: ws == N means the normalized position IS the
    // position; utility and threshold are direct array loads.
    u = ut_flat_[static_cast<std::size_t>(type) * n + position];
    threshold = pos_threshold_[position];
    frac = pos_boundary_[position];
  } else {
    // General path (ws != N, or an event beyond the predicted size):
    // partition of the event computed over the normalized position space so
    // that partition boundaries agree with the CDTs (Algorithm 2, line 12).
    const double norm = model_->normalize_position(position, predicted_ws);
    const auto part = std::min(
        static_cast<std::size_t>(norm * static_cast<double>(partitions_) /
                                 static_cast<double>(n)),
        partitions_ - 1);
    u = model_->utility(type, position, predicted_ws);
    threshold = thresholds_[part];
    frac = boundary_drop_[part];
  }
  u += revise_boost_;
  bool drop;
  if (u < threshold) {
    drop = true;
  } else if (u == threshold) {
    // At the boundary utility, drop just the fraction needed for an expected
    // amount of exactly x (1.0 when exact_amount is disabled).
    drop = frac >= 1.0 || rng_.bernoulli(frac);
  } else {
    drop = false;
  }
  if (drop && exploration_ > 0.0 && rng_.bernoulli(exploration_)) {
    drop = false;  // exploration: spare this event so the model can relearn
  }
  return drop;
}

bool EspiceShedder::should_drop(const Event& e, std::uint32_t position,
                                double predicted_ws) {
  if (is_watermark(e)) return false;  // punctuations are never shed
  if (!active_) {
    count_decision(false);
    return false;
  }
  const bool drop = decide(e.type, position, predicted_ws);
  count_decision(drop);
  return drop;
}

void EspiceShedder::score_block(const Event& e, const std::uint32_t* positions,
                                std::size_t n, double predicted_ws,
                                std::uint64_t* keep_bits) {
  if (n == 0) return;
  if (is_watermark(e)) {  // punctuations are never shed (no decisions)
    for (std::size_t w = 0; w < (n + 63) / 64; ++w) keep_bits[w] = ~0ULL;
    return;
  }
  if (!active_) {
    for (std::size_t w = 0; w < (n + 63) / 64; ++w) keep_bits[w] = ~0ULL;
    count_block(n, 0);
    return;
  }
#if ESPICE_X86_SIMD
  // Vector fast path.  Eligible only when the decision is branch-free and
  // RNG-free, so vector and scalar execution consume identical state:
  // flat arrays apply (ws == N), boundary fractions are all 1.0 (no
  // exact_amount Bernoulli draw) and exploration is off (no un-drop
  // draw).  The boost-range guard keeps the kernel's int32 threshold
  // subtraction away from wraparound (utilities are 8-bit, thresholds
  // single digits past them; only an absurd set_revise_boost could wrap).
  // Bails (false) on any position outside the flat arrays, and the block
  // reruns scalar -- the kernel touches no counters until it commits.
  if (!force_scalar_ && flat_simd_ok_ && predicted_ws == n_as_ws_ &&
      !exact_amount_ && exploration_ == 0.0 && revise_boost_ > INT_MIN / 2 &&
      revise_boost_ < INT_MAX / 2 && simd_supported()) {
    const std::size_t np = model_->n_positions();
    std::uint64_t dropped_simd = 0;
    if (score_flat_avx2(ut_flat_.data(), pos_threshold_.data(),
                        static_cast<std::uint32_t>(e.type) *
                            static_cast<std::uint32_t>(np),
                        static_cast<std::uint32_t>(np), revise_boost_,
                        positions, n, keep_bits, &dropped_simd)) {
      count_block(n, dropped_simd);
      return;
    }
  }
#endif
  std::uint64_t dropped = 0;
  std::uint64_t word = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (i != 0 && i % 64 == 0) {
      keep_bits[i / 64 - 1] = word;
      word = 0;
    }
    if (decide(e.type, positions[i], predicted_ws)) {
      ++dropped;
    } else {
      word |= std::uint64_t{1} << (i % 64);
    }
  }
  keep_bits[(n - 1) / 64] = word;
  count_block(n, dropped);
}

void EspiceShedder::serialize(durability::SnapshotWriter& w) const {
  Shedder::serialize(w);
  w.boolean(exact_amount_);
  w.f64(exploration_);
  model_->serialize(w);
  w.boolean(active_);
  w.u64(partitions_);
  w.f64(last_x_);
  for (const std::uint64_t s : rng_.state()) w.u64(s);
}

void EspiceShedder::restore(durability::SnapshotReader& r) {
  Shedder::restore(r);
  ESPICE_CHECK(r.boolean() == exact_amount_,
               ErrorCode::kCorruptSnapshot,
               "shedder snapshot exact_amount disagrees with the instance");
  exploration_ = r.f64();
  // Deactivate before swapping models so set_model() does not recompute
  // thresholds against stale command state.
  active_ = false;
  set_model(UtilityModel::deserialize(r));
  const bool active = r.boolean();
  partitions_ = static_cast<std::size_t>(r.u64());
  last_x_ = r.f64();
  if (active) {
    DropCommand cmd;
    cmd.active = true;
    cmd.partitions = partitions_;
    cmd.x = last_x_;
    on_command(cmd);
  }
  std::array<std::uint64_t, 4> state;
  for (auto& s : state) s = r.u64();
  rng_.set_state(state);
}

}  // namespace espice
