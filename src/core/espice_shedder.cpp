#include "core/espice_shedder.hpp"

#include <algorithm>

namespace espice {

EspiceShedder::EspiceShedder(std::shared_ptr<const UtilityModel> model,
                             bool exact_amount, std::uint64_t seed)
    : model_(std::move(model)), exact_amount_(exact_amount), rng_(seed) {
  ESPICE_REQUIRE(model_ != nullptr, "eSPICE shedder needs a utility model");
}

void EspiceShedder::set_exploration(double fraction) {
  ESPICE_REQUIRE(fraction >= 0.0 && fraction < 1.0,
                 "exploration fraction must be in [0, 1)");
  exploration_ = fraction;
}

void EspiceShedder::set_model(std::shared_ptr<const UtilityModel> model) {
  ESPICE_REQUIRE(model != nullptr, "eSPICE shedder needs a utility model");
  model_ = std::move(model);
  cdt_cache_.clear();
  if (active_) {
    // Recompute thresholds under the new model with the last command.
    DropCommand cmd;
    cmd.active = true;
    cmd.partitions = partitions_;
    cmd.x = last_x_;
    on_command(cmd);
  }
}

const std::vector<Cdt>& EspiceShedder::cdts_for(std::size_t partitions) {
  auto it = cdt_cache_.find(partitions);
  if (it == cdt_cache_.end()) {
    it = cdt_cache_.emplace(partitions,
                            Cdt::build_partitions(*model_, partitions))
             .first;
  }
  return it->second;
}

void EspiceShedder::on_command(const DropCommand& cmd) {
  active_ = cmd.active;
  if (!active_) {
    thresholds_.clear();
    boundary_drop_.clear();
    return;
  }
  ESPICE_ASSERT(cmd.partitions > 0, "command with zero partitions");
  partitions_ = cmd.partitions;
  last_x_ = cmd.x;
  const auto& cdts = cdts_for(partitions_);
  thresholds_.resize(partitions_);
  boundary_drop_.resize(partitions_);
  for (std::size_t p = 0; p < partitions_; ++p) {
    const int uth = cdts[p].threshold(cmd.x);
    thresholds_[p] = uth;
    double frac = 1.0;
    if (exact_amount_) {
      const double below = uth > 0 ? cdts[p].at(uth - 1) : 0.0;
      const double at = cdts[p].at(uth);
      if (at > below && cmd.x > below) {
        frac = std::min(1.0, (cmd.x - below) / (at - below));
      } else if (cmd.x <= below) {
        frac = 1.0;  // threshold() already minimal; defensive default
      }
    }
    boundary_drop_[p] = frac;
  }
}

bool EspiceShedder::should_drop(const Event& e, std::uint32_t position,
                                double predicted_ws) {
  if (!active_) {
    count_decision(false);
    return false;
  }
  // Partition of the event: computed over the normalized position space so
  // that partition boundaries agree with the CDTs (Algorithm 2, line 12).
  const double norm = model_->normalize_position(position, predicted_ws);
  const auto part = std::min(
      static_cast<std::size_t>(norm * static_cast<double>(partitions_) /
                               static_cast<double>(model_->n_positions())),
      partitions_ - 1);
  const int u = model_->utility(e.type, position, predicted_ws);
  bool drop;
  if (u < thresholds_[part]) {
    drop = true;
  } else if (u == thresholds_[part]) {
    // At the boundary utility, drop just the fraction needed for an expected
    // amount of exactly x (1.0 when exact_amount is disabled).
    const double frac = boundary_drop_[part];
    drop = frac >= 1.0 || rng_.bernoulli(frac);
  } else {
    drop = false;
  }
  if (drop && exploration_ > 0.0 && rng_.bernoulli(exploration_)) {
    drop = false;  // exploration: spare this event so the model can relearn
  }
  count_decision(drop);
  return drop;
}

}  // namespace espice
