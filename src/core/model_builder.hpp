// Online statistics collection and utility-model construction (paper
// Section 3.3 "Model Building" and Section 3.6 "Model Retraining").
//
// The builder consumes only what a black-box operator reveals:
//   * closed windows (their type-at-position composition)  -> position shares
//   * detected complex events (constituent types/positions) -> utilities
//
// Building is not time-critical (it runs off the hot path), so the builder
// favours clarity over micro-optimization.  Retraining is supported through
// exponential decay of the accumulated counts: calling decay(g) multiplies
// all counts by g in (0, 1], letting fresh observations dominate after a
// distribution shift.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "cep/matcher.hpp"
#include "cep/window.hpp"
#include "core/utility_model.hpp"

namespace espice {

struct ModelBuilderConfig {
  std::size_t num_types = 0;    ///< M: size of the event-type universe
  std::size_t n_positions = 0;  ///< N: normalized window size (positions)
  std::size_t bin_size = 1;     ///< bs: positions per UT column

  void validate() const {
    ESPICE_REQUIRE(num_types > 0, "num_types must be positive");
    ESPICE_REQUIRE(n_positions > 0, "n_positions must be positive");
    ESPICE_REQUIRE(bin_size > 0, "bin_size must be positive");
    ESPICE_REQUIRE(bin_size <= n_positions, "bin_size cannot exceed N");
  }
};

class ModelBuilder {
 public:
  explicit ModelBuilder(ModelBuilderConfig config);

  /// Records the composition of a closed window: every kept event's type and
  /// (scaled) position feed the position shares.
  void observe_window(const WindowView& w);
  void observe_window(const Window& w) { observe_window(w.view()); }

  /// Online variant for use *under shedding*: feed every offered
  /// (pre-shedding) (type, position) membership as it is routed, then call
  /// count_window() once per closed window.  Equivalent to observe_window()
  /// on the unshedded window contents; keeps the position shares unbiased by
  /// the shedder's own decisions.
  void observe_position(EventTypeId type, std::uint32_t position, double ws);
  void count_window();

  /// Records a detected complex event; `ws` is the offered size of the
  /// window it was detected in (needed for position scaling).
  void observe_match(const ComplexEvent& ce, std::size_t ws);

  /// Multiplies all accumulated counts by `factor` in (0, 1]; used for
  /// retraining after distribution changes.
  void decay(double factor);

  /// Discards all accumulated statistics.
  void reset();

  std::size_t windows_observed() const;
  std::size_t matches_observed() const { return matches_observed_; }

  /// Builds an immutable utility model from the statistics accumulated so
  /// far.  Requires at least one observed window; a model with no observed
  /// matches has all-zero utilities (everything equally droppable).
  std::shared_ptr<const UtilityModel> build() const;

  const ModelBuilderConfig& config() const { return config_; }

  /// Snapshot / restore of the accumulated statistics (durability layer).
  /// The restoring builder must be constructed with the same config.
  void serialize(durability::SnapshotWriter& w) const;
  void restore(durability::SnapshotReader& r);

 private:
  /// Distributes `weight` of an event at `position` of a `ws`-sized window
  /// over the scaled bin columns it covers, invoking add(col, w).
  template <typename AddFn>
  void for_each_scaled_col(std::uint32_t position, double ws, AddFn add) const;

  ModelBuilderConfig config_;
  std::size_t cols_;
  std::vector<double> match_counts_;  // [type][col]
  std::vector<double> pos_counts_;    // [type][col]
  double windows_weight_ = 0.0;       // decayed window count
  std::size_t windows_observed_ = 0;  // raw (undecayed) counter
  std::size_t matches_observed_ = 0;
};

}  // namespace espice
