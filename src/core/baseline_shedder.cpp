#include "core/baseline_shedder.hpp"

#include <algorithm>
#include <numeric>

#include "common/error.hpp"

namespace espice {

std::vector<double> BaselineShedder::pattern_repetitions(const Pattern& pattern,
                                                         std::size_t num_types) {
  std::vector<double> reps(num_types, 0.0);
  auto add_element = [&](const TypeSet& types) {
    if (types.is_any()) {
      for (auto& r : reps) r += 1.0;
    } else {
      for (EventTypeId t : types.members()) {
        if (t < num_types) reps[t] += 1.0;
      }
    }
  };
  for (const ElementSpec& el : pattern.elements) add_element(el.types);
  if (pattern.kind == PatternKind::kTriggerAny) add_element(pattern.any_candidates);
  return reps;
}

BaselineShedder::BaselineShedder(const Pattern& pattern,
                                 std::vector<double> type_frequencies,
                                 std::size_t window_size_events,
                                 std::uint64_t seed)
    : repetitions_(pattern_repetitions(pattern, type_frequencies.size())),
      freq_(std::move(type_frequencies)),
      drop_prob_(freq_.size(), 0.0),
      window_size_events_(window_size_events),
      rng_(seed) {
  ESPICE_REQUIRE(!freq_.empty(), "BL needs the type-frequency vector");
  ESPICE_REQUIRE(window_size_events_ > 0, "window size must be positive");
}

void BaselineShedder::on_command(const DropCommand& cmd) {
  active_ = cmd.active;
  if (!active_) {
    std::fill(drop_prob_.begin(), drop_prob_.end(), 0.0);
    return;
  }
  // BL has no notion of partitions: convert the per-partition amount into a
  // per-window amount.
  recompute(cmd.x * static_cast<double>(cmd.partitions));
}

void BaselineShedder::recompute(double x_per_window) {
  // Per-type drop amounts are allocated inversely to the type's pattern
  // utility: type T receives weight freq(T) / (1 + rep(T)), the x events per
  // window are split proportionally to the weights, and each type drops its
  // allocation by uniform sampling (drop probability alloc / freq).
  //
  // We deliberately use this *smooth* inverse-utility allocation rather than
  // a strict lowest-utility-first priority: He et al.'s fractional shedding
  // (and the paper's measured BL behaviour) spread drops across types
  // instead of sacrificing whole never-matching types first.  Allocations
  // exceeding a type's frequency are redistributed (water filling).
  const std::size_t m = freq_.size();
  std::vector<double> alloc(m, 0.0);
  std::vector<bool> saturated(m, false);
  double remaining = x_per_window;

  for (int round = 0; round < 32 && remaining > 1e-12; ++round) {
    double total_weight = 0.0;
    for (std::size_t t = 0; t < m; ++t) {
      if (!saturated[t] && freq_[t] > 0.0) {
        total_weight += freq_[t] / (1.0 + repetitions_[t]);
      }
    }
    if (total_weight <= 0.0) break;  // every type fully dropped
    bool any_saturated = false;
    double distributed = 0.0;
    for (std::size_t t = 0; t < m; ++t) {
      if (saturated[t] || freq_[t] <= 0.0) continue;
      const double share =
          remaining * (freq_[t] / (1.0 + repetitions_[t])) / total_weight;
      const double headroom = freq_[t] - alloc[t];
      if (share >= headroom) {
        alloc[t] = freq_[t];
        distributed += headroom;
        saturated[t] = true;
        any_saturated = true;
      } else {
        alloc[t] += share;
        distributed += share;
      }
    }
    remaining -= distributed;
    if (!any_saturated) break;  // everything fit; no need to redistribute
  }

  for (std::size_t t = 0; t < m; ++t) {
    drop_prob_[t] = freq_[t] > 0.0 ? std::clamp(alloc[t] / freq_[t], 0.0, 1.0)
                                   : 1.0;
  }
}

bool BaselineShedder::should_drop(const Event& e, std::uint32_t /*position*/,
                                  double /*predicted_ws*/) {
  if (is_watermark(e)) return false;  // punctuations are never shed
  if (!active_) {
    count_decision(false);
    return false;
  }
  const bool drop =
      e.type < drop_prob_.size() && rng_.bernoulli(drop_prob_[e.type]);
  count_decision(drop);
  return drop;
}

}  // namespace espice
