// The utility model: UT (utility table) + position shares (paper Section 3.2
// and 3.3).
//
// UT is an M x C table of integer utilities in [0, 100], where M is the
// number of event types and C = ceil(N / bs) columns cover the N positions of
// a normalized window (N = average observed window size, bs = bin size).
// UT(T, c) approximates 100 * P(event of type T at positions of bin c
// contributes to a complex event), normalized so the largest cell is 100.
//
// The position shares S(T, c) give the expected number of events of type T
// falling into bin c per window; they are the fractional weights used when
// counting utility occurrences into the CDT (paper, "position shares in a
// window").
//
// Variable window sizes are handled by scaling positions with sf = ws / N:
// an event at position p of a ws-sized window covers normalized positions
// [p*N/ws, (p+1)*N/ws).  When scaling up (ws < N) this range spans several
// cells and the utility is their overlap-weighted average, exactly as the
// paper prescribes.
#pragma once

#include <cstdint>
#include <cstddef>
#include <memory>
#include <vector>

#include "cep/event.hpp"
#include "common/error.hpp"

namespace espice::durability {
class SnapshotWriter;
class SnapshotReader;
}  // namespace espice::durability

namespace espice {

/// Maximum utility value stored in UT; utilities live in [0, kMaxUtility].
inline constexpr int kMaxUtility = 100;

class UtilityModel {
 public:
  /// `utilities`: M*C values in [0,100], row-major by type.
  /// `shares`: M*C expected per-window counts, row-major by type.
  UtilityModel(std::size_t num_types, std::size_t n_positions,
               std::size_t bin_size, std::vector<std::uint8_t> utilities,
               std::vector<double> shares);

  std::size_t num_types() const { return num_types_; }
  /// N: the normalized window size (positions).
  std::size_t n_positions() const { return n_positions_; }
  std::size_t bin_size() const { return bin_size_; }
  /// Number of bin columns C.
  std::size_t cols() const { return cols_; }

  /// Raw cell accessors (column-indexed).
  int utility_cell(EventTypeId type, std::size_t col) const {
    ESPICE_ASSERT(type < num_types_ && col < cols_, "UT cell out of range");
    return ut_[type * cols_ + col];
  }
  double share_cell(EventTypeId type, std::size_t col) const {
    ESPICE_ASSERT(type < num_types_ && col < cols_, "share cell out of range");
    return shares_[type * cols_ + col];
  }

  /// Number of normalized positions covered by column `col` (== bin_size
  /// except possibly for the last column).
  std::size_t col_width(std::size_t col) const;

  /// Bin column of normalized position p (p in [0, N)).
  std::size_t col_of_norm(double norm_pos) const;

  /// Utility of an event of `type` at `position` in a window of (predicted)
  /// total size `ws` events.  O(1) when ws >= N; O(cells covered) when
  /// scaling up.  This is the hot-path lookup (Algorithm 2, line 13).
  int utility(EventTypeId type, std::uint32_t position, double ws) const;

  /// Normalized position (in [0, N)) of `position` in a ws-sized window.
  double normalize_position(std::uint32_t position, double ws) const;

  /// Memory footprint of the tables in bytes (for the overhead analysis).
  std::size_t footprint_bytes() const {
    return ut_.size() * sizeof(std::uint8_t) + shares_.size() * sizeof(double);
  }

  /// Snapshot / restore (durability layer).  The model is immutable, so
  /// deserialize() reconstructs a fresh instance.
  void serialize(durability::SnapshotWriter& w) const;
  static std::shared_ptr<const UtilityModel> deserialize(
      durability::SnapshotReader& r);

 private:
  /// Validates n/bs before the column count is computed (so that a zero bin
  /// size surfaces as ConfigError, not a division by zero).
  static std::size_t checked_cols(std::size_t n_positions, std::size_t bin_size);

  std::size_t num_types_;
  std::size_t n_positions_;
  std::size_t bin_size_;
  std::size_t cols_;
  std::vector<std::uint8_t> ut_;
  std::vector<double> shares_;
};

}  // namespace espice
