// Load-shedder interface.
//
// A shedder answers one question per (event, window) pair on the operator's
// hot path: should this event be dropped from this window?  The overload
// detector (core/overload_detector.hpp) steers every shedder through
// DropCommand messages, so eSPICE, the He-et-al.-style baseline and the
// random shedder are interchangeable in the simulator and the harness.
#pragma once

#include <cstddef>
#include <cstdint>

#include "cep/event.hpp"

namespace espice {

/// Command issued by the overload detector (paper Section 3.4/3.5).
struct DropCommand {
  /// Whether shedding is active at all.
  bool active = false;
  /// Number of events to drop per partition of each window (x).  Fractional
  /// values are meaningful: the CDT is compared against x directly.
  double x = 0.0;
  /// Number of partitions per window (rho).  At least 1.
  std::size_t partitions = 1;
};

class Shedder {
 public:
  virtual ~Shedder() = default;

  /// Drop decision for an event at `position` of a window whose *predicted*
  /// total size is `predicted_ws` events.  Called once per (event, window)
  /// membership on the hot path -- implementations must be O(1) and must not
  /// allocate.
  virtual bool should_drop(const Event& e, std::uint32_t position,
                           double predicted_ws) = 0;

  /// Applies a new command from the overload detector (control plane; may do
  /// non-trivial work such as recomputing utility thresholds).
  virtual void on_command(const DropCommand& cmd) = 0;

  virtual const char* name() const = 0;

  /// Statistics: how many decisions / drops this shedder has made.
  std::uint64_t decisions() const { return decisions_; }
  std::uint64_t drops() const { return drops_; }

 protected:
  void count_decision(bool dropped) {
    ++decisions_;
    if (dropped) ++drops_;
  }

 private:
  std::uint64_t decisions_ = 0;
  std::uint64_t drops_ = 0;
};

/// Never drops anything; used for golden (ground-truth) runs.
class NullShedder final : public Shedder {
 public:
  bool should_drop(const Event&, std::uint32_t, double) override {
    count_decision(false);
    return false;
  }
  void on_command(const DropCommand&) override {}
  const char* name() const override { return "none"; }
};

}  // namespace espice
