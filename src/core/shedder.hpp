// Load-shedder interface.
//
// A shedder answers one question per (event, window) pair on the operator's
// hot path: should this event be dropped from this window?  The overload
// detector (core/overload_detector.hpp) steers every shedder through
// DropCommand messages, so eSPICE, the He-et-al.-style baseline and the
// random shedder are interchangeable in the simulator and the harness.
#pragma once

#include <cstddef>
#include <cstdint>

#include "cep/event.hpp"
#include "durability/serial.hpp"

namespace espice {

/// Command issued by the overload detector (paper Section 3.4/3.5).
struct DropCommand {
  /// Whether shedding is active at all.
  bool active = false;
  /// Number of events to drop per partition of each window (x).  Fractional
  /// values are meaningful: the CDT is compared against x directly.
  double x = 0.0;
  /// Number of partitions per window (rho).  At least 1.
  std::size_t partitions = 1;
};

/// Keep-bitmap layout shared by Shedder::score_block() and its callers:
/// membership i lives in word i / 64, bit i % 64.  Callers size their word
/// buffers with keep_bitmap_words() and read decisions with keep_bit() so
/// the layout has exactly one owner.
constexpr std::size_t keep_bitmap_words(std::size_t n) {
  return (n + 63) / 64;
}
inline bool keep_bit(const std::uint64_t* bits, std::size_t i) {
  return (bits[i >> 6] >> (i & 63)) & 1;
}

class Shedder {
 public:
  virtual ~Shedder() = default;

  /// Drop decision for an event at `position` of a window whose *predicted*
  /// total size is `predicted_ws` events.  Called once per (event, window)
  /// membership on the hot path -- implementations must be O(1) and must not
  /// allocate.
  ///
  /// Contract: watermark punctuations (is_watermark(e)) are control
  /// records, not data -- implementations must keep them (return false,
  /// no decision counted, no RNG consumed).  The engine's reorder stage
  /// consumes punctuations before shedding ever sees them; the guard is
  /// defense in depth for hosts driving shedders directly.
  virtual bool should_drop(const Event& e, std::uint32_t position,
                           double predicted_ws) = 0;

  /// Block decision: one event offered to `n` overlapping windows at
  /// `positions[0..n)`.  Sets bit i of `keep_bits` (word i/64, bit i%64)
  /// when membership i is KEPT; the caller provides ceil(n/64) words and
  /// need not zero them.  Must be bit-identical to calling should_drop()
  /// once per position in order -- including the decision/drop counters and
  /// any internal RNG consumption -- so block and per-event execution stay
  /// interchangeable.  The default does exactly that loop; shedders with
  /// cheaper batch scoring (EspiceShedder::score_block) override it.
  virtual void score_block(const Event& e, const std::uint32_t* positions,
                           std::size_t n, double predicted_ws,
                           std::uint64_t* keep_bits) {
    std::uint64_t word = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (i != 0 && i % 64 == 0) {
        keep_bits[i / 64 - 1] = word;
        word = 0;
      }
      if (!should_drop(e, positions[i], predicted_ws)) {
        word |= std::uint64_t{1} << (i % 64);
      }
    }
    if (n > 0) keep_bits[(n - 1) / 64] = word;
  }

  /// Applies a new command from the overload detector (control plane; may do
  /// non-trivial work such as recomputing utility thresholds).
  virtual void on_command(const DropCommand& cmd) = 0;

  virtual const char* name() const = 0;

  /// Statistics: how many decisions / drops this shedder has made.
  std::uint64_t decisions() const { return decisions_; }
  std::uint64_t drops() const { return drops_; }

  /// Snapshot / restore (durability layer).  The base carries the decision
  /// counters; stateful shedders override BOTH, call the base first, and
  /// append their model / RNG state so a restored shedder continues the
  /// exact decision stream.  The restoring instance must be constructed
  /// with the same configuration (factories re-run on recovery).
  virtual void serialize(durability::SnapshotWriter& w) const {
    w.u64(decisions_);
    w.u64(drops_);
  }
  virtual void restore(durability::SnapshotReader& r) {
    decisions_ = r.u64();
    drops_ = r.u64();
  }

 protected:
  void count_decision(bool dropped) {
    ++decisions_;
    if (dropped) ++drops_;
  }

  /// Bulk counter update for score_block() overrides.
  void count_block(std::uint64_t decisions, std::uint64_t drops) {
    decisions_ += decisions;
    drops_ += drops;
  }

 private:
  std::uint64_t decisions_ = 0;
  std::uint64_t drops_ = 0;
};

/// Never drops anything; used for golden (ground-truth) runs.
class NullShedder final : public Shedder {
 public:
  bool should_drop(const Event&, std::uint32_t, double) override {
    count_decision(false);
    return false;
  }
  void on_command(const DropCommand&) override {}
  const char* name() const override { return "none"; }
};

}  // namespace espice
