// "Appropriate f Value" advisor (paper Section 3.4).
//
// The watermark factor f trades off two risks: a low f sheds during harmless
// short bursts, a high f shrinks the dropping buffer (qmax - f*qmax), forcing
// small partitions in which the shedder may have to drop high-utility events.
// The paper proposes clustering the utilities in UT into importance classes
// and choosing the largest f for which every resulting partition still holds
// at least x low-class events.
//
// We implement exactly that: a weighted 2-class split of the utility
// distribution (Otsu's criterion over the share-weighted utility histogram)
// defines "low-utility", and suggest_f() scans f from high to low until every
// partition's CDT reaches x within the low class.
#pragma once

#include <cstddef>

#include "core/utility_model.hpp"

namespace espice {

/// Boundary utility of the low-importance class: the threshold that best
/// separates the share-weighted utility histogram into two classes
/// (maximizing between-class variance).  Returns a value in [0, 100);
/// utilities <= the boundary are "low class".
int low_utility_class_boundary(const UtilityModel& model);

struct FAdvice {
  double f = 0.8;            ///< suggested watermark factor
  std::size_t partitions = 1;///< rho implied by f
  int low_class_boundary = 0;///< utility boundary used for the check
  bool feasible = false;     ///< false if no f in the scan range works
};

/// Finds the largest f in [f_min, f_max] (scanned in `step` decrements) such
/// that, with qmax events of queue budget, every one of the
/// ceil(N / ((1-f)*qmax)) partitions contains at least `x` expected events of
/// the low-utility class.  If no f qualifies, returns the f whose partitions
/// come closest (feasible = false).
FAdvice suggest_f(const UtilityModel& model, double qmax, double x,
                  double f_min = 0.05, double f_max = 0.95,
                  double step = 0.05);

}  // namespace espice
