// The eSPICE load shedder (paper Section 3.5, Algorithm 2).
//
// Hot path: should_drop() performs one scaled position computation, one UT
// lookup and one threshold comparison -- O(1), allocation-free.  When the
// caller's predicted window size equals the model's N (the steady state of
// every operator host: predicted_ws is derived from N after sizing), both
// lookups collapse to loads from flat position-indexed arrays prepared by
// the control plane: ut_flat_ (utility per (type, position), the UT with
// the bin indirection pre-expanded) and pos_threshold_/pos_boundary_ (the
// per-partition thresholds of Algorithm 2 pre-broadcast over positions).
// The flat path computes exactly the same values as the general one; it
// just removes the per-event divisions and the CDT/partition arithmetic.
// score_block() scores a whole membership block (one event in n overlapping
// windows) over those arrays into a keep bitmap -- one virtual call and
// contiguous loads instead of n scalar should_drop() calls.  On x86-64 the
// block scorer additionally runs an AVX2 kernel (runtime cpuid dispatch,
// function-level target attribute, scalar path retained): 8 positions per
// iteration, utility-byte and threshold gathers, one broadcast compare,
// sign-mask straight into the keep word.  The kernel is only eligible when
// the decision stream is RNG-free (no exact_amount boundary sampling, no
// exploration), so its results -- keep bits, decision/drop counters, RNG
// state -- are bit-identical to scalar execution by construction, and a
// differential twin test (tests/property/shedder_simd_oracle_test) holds
// it to that.
//
// Control plane: on_command() (re)computes the per-partition utility
// thresholds from the CDTs and re-broadcasts the flat arrays; CDT sets are
// cached per partition count (flat, partition-count-indexed) so a command
// that only changes x is a cheap threshold re-scan.
//
// Exact-amount mode (optional, default off; DESIGN.md §5b): the paper's
// Algorithm 2 drops *every* event with utility <= uth, which removes
// CDT(uth) >= x events -- potentially far more than x when many events share
// the threshold utility.  With exact_amount enabled, events strictly below
// uth always drop while events exactly at uth drop with probability
// (x - CDT(uth-1)) / (CDT(uth) - CDT(uth-1)), so the expected drop amount is
// exactly x and the queue rides the f*qmax watermark.  The literal
// (at-least-x) default usually wins on *quality*: when the model is
// accurate, the extra drops land on harmless events, while boundary
// sampling occasionally hits real constituents
// (bench_ablation_exact_amount quantifies this).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "core/cdt.hpp"
#include "core/shedder.hpp"
#include "core/utility_model.hpp"

namespace espice {

class EspiceShedder final : public Shedder {
 public:
  explicit EspiceShedder(std::shared_ptr<const UtilityModel> model,
                         bool exact_amount = false, std::uint64_t seed = 19);

  /// Exploration: keep this fraction of would-be-dropped events anyway.
  /// Required for *online* relearning under sustained shedding -- a cell the
  /// shedder drops never gains match evidence, so a drifted-but-valuable
  /// cell could stay condemned forever without it.  0 (default) disables.
  void set_exploration(double fraction);
  double exploration() const { return exploration_; }

  /// Event-time revisability hook: while the engine's late policy is
  /// kRevise, every on-time event's utility is raised by `boost` before
  /// the threshold compare -- a kept event can never force a (full
  /// legacy re-scan) window revision later, so keeping is worth more
  /// than the model's match-contribution alone.  0 (default) leaves the
  /// decision stream untouched.  Configuration, not state: hosts apply
  /// it at construction (before restore()), so it is not serialized.
  void set_revise_boost(int boost) { revise_boost_ = boost; }
  int revise_boost() const { return revise_boost_; }

  bool should_drop(const Event& e, std::uint32_t position,
                   double predicted_ws) override;
  void score_block(const Event& e, const std::uint32_t* positions,
                   std::size_t n, double predicted_ws,
                   std::uint64_t* keep_bits) override;
  void on_command(const DropCommand& cmd) override;
  const char* name() const override { return "eSPICE"; }

  /// True when this build + CPU can run the vectorized score_block kernel
  /// (AVX2, checked once at runtime).  The kernel is an implementation
  /// detail -- results are bit-identical either way -- but tests and
  /// benches use this to report which path actually ran.
  static bool simd_supported();

  /// Test hook: pin this instance to the scalar score_block path even
  /// where the SIMD kernel is eligible, so differential twin tests can
  /// compare vector vs scalar decisions in one process.  Configuration,
  /// not state (like set_revise_boost): not serialized.
  void set_force_scalar(bool force) { force_scalar_ = force; }
  bool force_scalar() const { return force_scalar_; }

  /// Swaps in a retrained model; invalidates cached CDTs and recomputes the
  /// thresholds of the current command.
  void set_model(std::shared_ptr<const UtilityModel> model);

  const UtilityModel& model() const { return *model_; }
  /// Shared handle to the current model (hosts rebinding a coordinator
  /// after restore need the owning pointer, not just a reference).
  std::shared_ptr<const UtilityModel> model_ptr() const { return model_; }
  bool active() const { return active_; }
  /// Current per-partition thresholds (empty while inactive).
  const std::vector<int>& thresholds() const { return thresholds_; }

  /// Snapshot / restore (durability layer): counters, model tables,
  /// command state and the RNG -- the flat hot-path arrays and CDT caches
  /// are re-derived, so a restored shedder makes bit-identical decisions
  /// without serializing derived state.
  void serialize(durability::SnapshotWriter& w) const override;
  void restore(durability::SnapshotReader& r) override;

 private:
  const std::vector<Cdt>& cdts_for(std::size_t partitions);
  void rebuild_ut_flat();
  void rebuild_flat_thresholds();
  /// The raw drop decision (no counters).  Flat fast path when the caller's
  /// ws equals the model's N and the position is inside it; identical math
  /// through the model/partition arithmetic otherwise.
  bool decide(EventTypeId type, std::uint32_t position, double predicted_ws);

  std::shared_ptr<const UtilityModel> model_;
  /// CDT sets per partition count, flat-indexed by the count (the counts in
  /// play are the detector's rho values -- single digits); empty slot = not
  /// built yet.
  std::vector<std::vector<Cdt>> cdt_cache_;
  std::vector<int> thresholds_;
  /// Per partition: drop probability for events exactly at the threshold
  /// utility (1.0 unless exact_amount is enabled).
  std::vector<double> boundary_drop_;

  // Flat position-indexed hot-path arrays (see file comment).  ut_flat_
  // tracks the model (N x M, rebuilt on set_model); the threshold arrays
  // track the active command (N each, rebuilt on on_command).  ut_flat_
  // carries 3 bytes of tail padding so the AVX2 kernel's 4-byte scale-1
  // gathers of the last entries stay inside the allocation.
  std::vector<std::uint8_t> ut_flat_;       ///< [type * N + position]
  std::vector<int> pos_threshold_;          ///< threshold of pos's partition
  std::vector<double> pos_boundary_;        ///< boundary drop of its partition
  double n_as_ws_ = 0.0;                    ///< N as a double (ws fast-path key)
  /// Flat index space fits the kernel's signed 32-bit gather indices
  /// (set by rebuild_ut_flat; practically always true).
  bool flat_simd_ok_ = false;
  bool force_scalar_ = false;               ///< test hook, see above

  std::size_t partitions_ = 1;
  double last_x_ = 0.0;
  double exploration_ = 0.0;
  int revise_boost_ = 0;
  bool exact_amount_;
  Rng rng_;
  bool active_ = false;
};

}  // namespace espice
