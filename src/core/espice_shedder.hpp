// The eSPICE load shedder (paper Section 3.5, Algorithm 2).
//
// Hot path: should_drop() performs one scaled position computation, one UT
// lookup and one threshold comparison -- O(1), allocation-free.
// Control plane: on_command() (re)computes the per-partition utility
// thresholds from the CDTs; CDT sets are cached per partition count so a
// command that only changes x is a cheap threshold re-scan.
//
// Exact-amount mode (optional, default off; DESIGN.md §5b): the paper's
// Algorithm 2 drops *every* event with utility <= uth, which removes
// CDT(uth) >= x events -- potentially far more than x when many events share
// the threshold utility.  With exact_amount enabled, events strictly below
// uth always drop while events exactly at uth drop with probability
// (x - CDT(uth-1)) / (CDT(uth) - CDT(uth-1)), so the expected drop amount is
// exactly x and the queue rides the f*qmax watermark.  The literal
// (at-least-x) default usually wins on *quality*: when the model is
// accurate, the extra drops land on harmless events, while boundary
// sampling occasionally hits real constituents
// (bench_ablation_exact_amount quantifies this).
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "core/cdt.hpp"
#include "core/shedder.hpp"
#include "core/utility_model.hpp"

namespace espice {

class EspiceShedder final : public Shedder {
 public:
  explicit EspiceShedder(std::shared_ptr<const UtilityModel> model,
                         bool exact_amount = false, std::uint64_t seed = 19);

  /// Exploration: keep this fraction of would-be-dropped events anyway.
  /// Required for *online* relearning under sustained shedding -- a cell the
  /// shedder drops never gains match evidence, so a drifted-but-valuable
  /// cell could stay condemned forever without it.  0 (default) disables.
  void set_exploration(double fraction);
  double exploration() const { return exploration_; }

  bool should_drop(const Event& e, std::uint32_t position,
                   double predicted_ws) override;
  void on_command(const DropCommand& cmd) override;
  const char* name() const override { return "eSPICE"; }

  /// Swaps in a retrained model; invalidates cached CDTs and recomputes the
  /// thresholds of the current command.
  void set_model(std::shared_ptr<const UtilityModel> model);

  const UtilityModel& model() const { return *model_; }
  bool active() const { return active_; }
  /// Current per-partition thresholds (empty while inactive).
  const std::vector<int>& thresholds() const { return thresholds_; }

 private:
  const std::vector<Cdt>& cdts_for(std::size_t partitions);

  std::shared_ptr<const UtilityModel> model_;
  std::unordered_map<std::size_t, std::vector<Cdt>> cdt_cache_;
  std::vector<int> thresholds_;
  /// Per partition: drop probability for events exactly at the threshold
  /// utility (1.0 unless exact_amount is enabled).
  std::vector<double> boundary_drop_;
  std::size_t partitions_ = 1;
  double last_x_ = 0.0;
  double exploration_ = 0.0;
  bool exact_amount_;
  Rng rng_;
  bool active_ = false;
};

}  // namespace espice
