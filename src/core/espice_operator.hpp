// EspiceOperator: the embeddable, online facade over the whole framework.
//
// run_experiment() (harness) is built for offline evaluation -- separate
// training and measurement passes over a stored stream.  A production host
// embeds eSPICE differently: one object consumes the live stream, trains
// itself, starts shedding when the host's input queue grows, and retrains
// when the stream drifts.  This class wires WindowManager + Matcher +
// ModelBuilder + OverloadDetector + EspiceShedder + DriftDetector into that
// lifecycle:
//
//   EspiceOperator op(config, [](const ComplexEvent& ce) { ... });
//   loop:
//     op.push(event);                  // per dequeued event
//     op.observe_cost(seconds);        // measured processing cost (optional)
//     every tick: op.on_tick(queue_size);
//
// Lifecycle:
//  * kSizing: the first windows only measure the average window size N
//    (skipped for count-based windows, where N is the span),
//  * kTraining: statistics accumulate until `training_windows` windows were
//    observed, then the utility model is built and shedding becomes armed,
//  * kShedding: drop decisions follow the overload detector's commands; the
//    model keeps learning from detected matches, the drift detector watches
//    the input composition and triggers decay + rebuild on drift.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>

#include "cep/incremental_matcher.hpp"
#include "cep/pattern.hpp"
#include "cep/window.hpp"
#include "core/drift_detector.hpp"
#include "core/espice_shedder.hpp"
#include "core/model_builder.hpp"
#include "core/overload_detector.hpp"

namespace espice {

struct EspiceOperatorConfig {
  // --- query ---------------------------------------------------------------
  Pattern pattern;
  WindowSpec window;
  SelectionPolicy selection = SelectionPolicy::kFirst;
  ConsumptionPolicy consumption = ConsumptionPolicy::kConsumed;
  std::size_t max_matches_per_window = 1;

  // --- model ---------------------------------------------------------------
  std::size_t num_types = 0;       ///< M: event-type universe size
  std::size_t bin_size = 1;        ///< bs
  std::size_t n_positions = 0;     ///< N; 0 = derive (sizing phase / span)
  std::size_t sizing_windows = 100;   ///< windows used to estimate N
  std::size_t training_windows = 500; ///< windows before the model is built

  // --- control plane ---------------------------------------------------------
  OverloadDetectorConfig detector;  ///< window_size_events is filled in
  bool exact_amount = false;        ///< see EspiceShedder

  // --- retraining ------------------------------------------------------------
  bool drift_retraining = true;
  DriftDetectorConfig drift;
  /// Decay applied to the accumulated statistics when drift triggers a
  /// rebuild (old evidence fades, recent evidence dominates).
  double retrain_decay = 0.1;
  /// Fraction of would-be-dropped events kept for relearning (see
  /// EspiceShedder::set_exploration).  Without exploration, a drifted cell
  /// that the stale model sheds can never regain match evidence.
  double exploration = 0.05;
  /// Rebuild the shedder's model from the accumulated statistics every this
  /// many closed windows while shedding (0 = only on drift triggers).
  std::size_t rebuild_every_windows = 2000;

  void validate() const {
    ESPICE_REQUIRE(num_types > 0, "num_types must be set");
    ESPICE_REQUIRE(training_windows > 0, "training_windows must be positive");
    ESPICE_REQUIRE(retrain_decay > 0.0 && retrain_decay <= 1.0,
                   "retrain_decay must be in (0, 1]");
    window.validate();
  }
};

struct OperatorStats;

class EspiceOperator {
 public:
  enum class Phase { kSizing, kTraining, kShedding };

  using MatchCallback = std::function<void(const ComplexEvent&)>;

  EspiceOperator(EspiceOperatorConfig config, MatchCallback on_match);

  // The window manager's kept feed points at this object's matcher; moving
  // the operator would dangle it.
  EspiceOperator(const EspiceOperator&) = delete;
  EspiceOperator& operator=(const EspiceOperator&) = delete;

  /// Consumes the next event of the stream (in order).  Window routing,
  /// shedding and matching happen inside; detected complex events are
  /// delivered through the callback.
  void push(const Event& e);

  /// Flushes all open windows (end of stream).
  void finish();

  /// Host signal: measured processing cost of one event (seconds).  Feeds
  /// the overload detector's l(p) estimate.
  void observe_cost(double seconds);

  /// Host signal: current input-queue size; call periodically (every
  /// detector tick period).  Also feeds the arrival-rate estimate through
  /// `now` (the host's clock, seconds).
  void on_tick(double now, std::size_t queue_size);

  /// Host signal: one event arrived at `ts` (for the rate estimate).
  void observe_arrival(double ts) { detector_.observe_arrival(ts); }

  // --- introspection ---------------------------------------------------------
  Phase phase() const { return phase_; }
  bool shedding_active() const;
  /// nullptr until training completes.
  const UtilityModel* model() const;
  std::uint64_t drops() const;
  std::uint64_t decisions() const;
  std::size_t retrains() const { return retrains_; }
  std::size_t windows_observed() const;
  /// One-call snapshot of every lifetime counter; what an embedding host
  /// (e.g. the sharded StreamEngine's merge stage) reports per operator.
  OperatorStats stats() const;

 private:
  void close_windows();
  void begin_training(std::size_t n_positions);
  void build_and_arm();
  void refresh_model(bool rebase_drift);
  void retrain();

  EspiceOperatorConfig config_;
  MatchCallback on_match_;
  /// Stream-level matcher: kept events advance runs at offer time (fed by
  /// the window manager's KeptFeed); window close is a finalize lookup.
  IncrementalMatcher matcher_;
  MatcherFeed feed_;
  WindowManager windows_;
  OverloadDetector detector_;

  Phase phase_ = Phase::kSizing;
  std::size_t sizing_count_ = 0;
  double sizing_size_sum_ = 0.0;

  std::optional<ModelBuilder> builder_;
  std::unique_ptr<EspiceShedder> shedder_;
  std::optional<DriftDetector> drift_;
  /// Block-scoring scratch (one event's membership positions / keep bits).
  std::vector<std::uint32_t> pos_scratch_;
  std::vector<std::uint64_t> keep_bits_;
  double predicted_ws_ = 0.0;
  std::size_t retrains_ = 0;
  std::size_t windows_since_rebuild_ = 0;
  bool drift_pending_ = false;

  // Lifetime counters (see stats()).
  std::uint64_t events_ = 0;
  std::uint64_t memberships_ = 0;
  std::uint64_t memberships_kept_ = 0;
  std::uint64_t windows_closed_ = 0;
  std::uint64_t matches_ = 0;
};

/// Final stat snapshot of one operator (hosts aggregate these across shards).
struct OperatorStats {
  EspiceOperator::Phase phase = EspiceOperator::Phase::kSizing;
  std::uint64_t events = 0;
  std::uint64_t memberships = 0;       ///< (event, window) pairs offered
  std::uint64_t memberships_kept = 0;  ///< pairs kept after shedding
  std::uint64_t windows_closed = 0;
  std::uint64_t matches = 0;
  std::uint64_t decisions = 0;  ///< shedder decisions (0 until armed)
  std::uint64_t drops = 0;
  std::size_t retrains = 0;
  std::size_t windows_observed = 0;
  bool shedding_active = false;
};

}  // namespace espice
