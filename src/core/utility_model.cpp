#include "core/utility_model.hpp"

#include <algorithm>
#include <cmath>

#include "durability/serial.hpp"

namespace espice {

std::size_t UtilityModel::checked_cols(std::size_t n_positions,
                                       std::size_t bin_size) {
  ESPICE_REQUIRE(n_positions > 0, "utility model needs N > 0");
  ESPICE_REQUIRE(bin_size > 0, "bin size must be positive");
  return (n_positions + bin_size - 1) / bin_size;
}

UtilityModel::UtilityModel(std::size_t num_types, std::size_t n_positions,
                           std::size_t bin_size,
                           std::vector<std::uint8_t> utilities,
                           std::vector<double> shares)
    : num_types_(num_types),
      n_positions_(n_positions),
      bin_size_(bin_size),
      cols_(checked_cols(n_positions, bin_size)),
      ut_(std::move(utilities)),
      shares_(std::move(shares)) {
  ESPICE_REQUIRE(num_types_ > 0, "utility model needs at least one event type");
  ESPICE_ASSERT(ut_.size() == num_types_ * cols_, "UT size mismatch");
  ESPICE_ASSERT(shares_.size() == num_types_ * cols_, "shares size mismatch");
  for (std::uint8_t u : ut_) {
    ESPICE_ASSERT(u <= kMaxUtility, "utility out of [0, 100]");
  }
}

std::size_t UtilityModel::col_width(std::size_t col) const {
  ESPICE_ASSERT(col < cols_, "column out of range");
  if (col + 1 < cols_) return bin_size_;
  return n_positions_ - col * bin_size_;
}

std::size_t UtilityModel::col_of_norm(double norm_pos) const {
  if (norm_pos < 0.0) norm_pos = 0.0;
  auto col = static_cast<std::size_t>(norm_pos) / bin_size_;
  return std::min(col, cols_ - 1);
}

double UtilityModel::normalize_position(std::uint32_t position, double ws) const {
  ESPICE_ASSERT(ws > 0.0, "window size must be positive");
  const double norm = static_cast<double>(position) *
                      static_cast<double>(n_positions_) / ws;
  // Clamp: events beyond the predicted size map to the last position.
  return std::min(norm, static_cast<double>(n_positions_) - 1e-9);
}

int UtilityModel::utility(EventTypeId type, std::uint32_t position,
                          double ws) const {
  ESPICE_ASSERT(type < num_types_, "type out of range");
  const double scale = static_cast<double>(n_positions_) / ws;
  const double lo = std::min(static_cast<double>(position) * scale,
                             static_cast<double>(n_positions_) - 1e-9);
  if (scale <= 1.0) {
    // ws >= N: the event covers at most one cell -- single lookup.
    return utility_cell(type, col_of_norm(lo));
  }
  // ws < N (scaling up): average the covered cells, weighted by overlap.
  const double hi = std::min(static_cast<double>(position + 1) * scale,
                             static_cast<double>(n_positions_));
  const std::size_t first_col = col_of_norm(lo);
  const std::size_t last_col = col_of_norm(std::nextafter(hi, lo));
  if (first_col == last_col) return utility_cell(type, first_col);
  double weighted = 0.0;
  double total = 0.0;
  for (std::size_t c = first_col; c <= last_col; ++c) {
    const double c_lo = static_cast<double>(c * bin_size_);
    const double c_hi = c_lo + static_cast<double>(col_width(c));
    const double overlap = std::min(hi, c_hi) - std::max(lo, c_lo);
    if (overlap <= 0.0) continue;
    weighted += overlap * static_cast<double>(utility_cell(type, c));
    total += overlap;
  }
  if (total <= 0.0) return utility_cell(type, first_col);
  return static_cast<int>(std::lround(weighted / total));
}

void UtilityModel::serialize(durability::SnapshotWriter& w) const {
  w.u64(num_types_);
  w.u64(n_positions_);
  w.u64(bin_size_);
  w.vec_int(ut_);
  w.vec_f64(shares_);
}

std::shared_ptr<const UtilityModel> UtilityModel::deserialize(
    durability::SnapshotReader& r) {
  // Plain dimension counts, not length prefixes (N can exceed the payload
  // size in bytes when bins are wide), so u64, not size().
  const auto num_types = static_cast<std::size_t>(r.u64());
  const auto n_positions = static_cast<std::size_t>(r.u64());
  const auto bin_size = static_cast<std::size_t>(r.u64());
  std::vector<std::uint8_t> ut = r.vec_int<std::uint8_t>();
  std::vector<double> shares = r.vec_f64();
  try {
    return std::make_shared<const UtilityModel>(num_types, n_positions,
                                                bin_size, std::move(ut),
                                                std::move(shares));
  } catch (const ConfigError& e) {
    // Corrupt dimensions surface as the ctor's validation error; map them
    // to the snapshot-corruption category the recovery path dispatches on.
    throw Error(ErrorCode::kCorruptSnapshot,
                std::string("utility model snapshot invalid: ") + e.what());
  }
}

}  // namespace espice
