#include "core/espice_operator.hpp"

#include <algorithm>
#include <cmath>

namespace espice {

EspiceOperator::EspiceOperator(EspiceOperatorConfig config,
                               MatchCallback on_match)
    : config_(std::move(config)),
      on_match_(std::move(on_match)),
      matcher_(config_.pattern, config_.selection, config_.consumption,
               config_.max_matches_per_window),
      feed_(&matcher_),
      windows_(config_.window),
      detector_([&] {
        // The detector's window size is refined once N is known; seed it
        // with something valid.
        auto d = config_.detector;
        d.window_size_events = std::max<std::size_t>(d.window_size_events, 1);
        return d;
      }()) {
  config_.validate();
  ESPICE_REQUIRE(on_match_ != nullptr, "match callback must be set");
  // Ineligible configurations (last selection, negations, multi-match)
  // always take the window scan at finalize(), and tumbling windows have
  // no overlap to share runs across; feeding either would be pure
  // per-event overhead.
  if (matcher_.stream_incremental() && windows_can_overlap(config_.window)) {
    windows_.set_kept_feed(&feed_);
  }

  // N known up front?  Count-based windows and explicit overrides skip the
  // sizing phase.
  std::size_t n = config_.n_positions;
  if (n == 0 && config_.window.span_kind == WindowSpan::kCount) {
    n = config_.window.span_events;
  }
  if (n > 0) {
    begin_training(n);
  }
}

void EspiceOperator::begin_training(std::size_t n_positions) {
  ModelBuilderConfig mb;
  mb.num_types = config_.num_types;
  mb.n_positions = n_positions;
  mb.bin_size = std::min(config_.bin_size, n_positions);
  builder_.emplace(mb);
  predicted_ws_ = static_cast<double>(n_positions);
  phase_ = Phase::kTraining;
}

void EspiceOperator::push(const Event& e) {
  // Watermark punctuations are control records owned by the engine's
  // event-time stage; a window-level operator ignores them.
  if (is_watermark(e)) return;
  // Always-on: the stream is external input, and everything downstream
  // (model statistics, utility lookups) indexes arrays by type.  Once per
  // event, not per membership, so the cost is irrelevant.
  ESPICE_REQUIRE(e.type < config_.num_types, "event type outside the universe");
  auto& memberships = windows_.offer(e);
  ++events_;
  memberships_ += memberships.size();
  if (phase_ != Phase::kShedding) {
    for (const auto& m : memberships) {
      windows_.keep(m, e);
      ++memberships_kept_;
    }
  } else if (!memberships.empty()) {
    const std::size_t mcount = memberships.size();
    pos_scratch_.resize(mcount);
    for (std::size_t i = 0; i < mcount; ++i) {
      pos_scratch_[i] = memberships[i].position;
    }
    // Statistics are fed *pre-drop* so the position shares (and the drift
    // reference) stay unbiased by the shedder's own decisions.
    for (std::size_t i = 0; i < mcount; ++i) {
      builder_->observe_position(e.type, pos_scratch_[i], predicted_ws_);
      if (drift_ && drift_->observe(e, pos_scratch_[i], predicted_ws_)) {
        drift_pending_ = true;  // retrain after this event's routing
      }
    }
    // One block-scoring call decides the whole membership set (identical
    // decisions, in order, to per-membership should_drop()).
    keep_bits_.resize(keep_bitmap_words(mcount));
    shedder_->score_block(e, pos_scratch_.data(), mcount, predicted_ws_,
                          keep_bits_.data());
    for (std::size_t i = 0; i < mcount; ++i) {
      if (keep_bit(keep_bits_.data(), i)) {
        windows_.keep(memberships[i], e);
        ++memberships_kept_;
      }
    }
  }
  close_windows();
  if (drift_pending_) {
    drift_pending_ = false;
    retrain();
  }
}

void EspiceOperator::close_windows() {
  for (const WindowView& w : windows_.drain_closed()) {
    ++windows_closed_;
    const auto matches = matcher_.finalize(w);
    matches_ += matches.size();
    switch (phase_) {
      case Phase::kSizing: {
        sizing_size_sum_ += static_cast<double>(w.size());
        if (++sizing_count_ >= config_.sizing_windows) {
          const auto n = static_cast<std::size_t>(std::max<long>(
              1, std::lround(sizing_size_sum_ /
                             static_cast<double>(sizing_count_))));
          begin_training(n);
        }
        break;
      }
      case Phase::kTraining: {
        builder_->observe_window(w);
        for (const auto& m : matches) builder_->observe_match(m, w.size());
        if (builder_->windows_observed() >= config_.training_windows) {
          build_and_arm();
        }
        break;
      }
      case Phase::kShedding: {
        // Positions were already fed pre-drop in push(); only the window
        // count and the match evidence are recorded here.
        builder_->count_window();
        for (const auto& m : matches) builder_->observe_match(m, w.size());
        if (config_.rebuild_every_windows > 0 &&
            ++windows_since_rebuild_ >= config_.rebuild_every_windows) {
          refresh_model(/*rebase_drift=*/false);
        }
        break;
      }
    }
    for (const auto& m : matches) on_match_(m);
  }
}

void EspiceOperator::build_and_arm() {
  auto model = builder_->build();
  // Refine the detector's notion of the window size (rho / psize).
  auto detector_config = config_.detector;
  detector_config.window_size_events = model->n_positions();
  detector_ = OverloadDetector(detector_config);
  shedder_ = std::make_unique<EspiceShedder>(model, config_.exact_amount);
  shedder_->set_exploration(config_.exploration);
  if (config_.drift_retraining) {
    drift_.emplace(*model, config_.drift);
  }
  phase_ = Phase::kShedding;
}

void EspiceOperator::refresh_model(bool rebase_drift) {
  auto model = builder_->build();
  shedder_->set_model(model);
  // Periodic refreshes keep the drift reference (and its batch state)
  // untouched: the reference tracks what the *original* training saw until
  // an actual drift retrain rebases it.
  if (rebase_drift && drift_) drift_->rebase(*model);
  windows_since_rebuild_ = 0;
}

void EspiceOperator::retrain() {
  ESPICE_ASSERT(phase_ == Phase::kShedding, "retrain before model exists");
  // Old evidence fades so the recent batches the drift detector flagged
  // dominate the rebuilt model.
  builder_->decay(config_.retrain_decay);
  refresh_model(/*rebase_drift=*/true);
  ++retrains_;
}

void EspiceOperator::finish() {
  windows_.close_all();
  close_windows();
}

void EspiceOperator::observe_cost(double seconds) {
  detector_.observe_processing_cost(seconds);
}

void EspiceOperator::on_tick(double /*now*/, std::size_t queue_size) {
  if (phase_ != Phase::kShedding) return;
  const DropCommand cmd = detector_.tick(queue_size);
  shedder_->on_command(cmd);
}

bool EspiceOperator::shedding_active() const {
  return phase_ == Phase::kShedding && shedder_->active();
}

const UtilityModel* EspiceOperator::model() const {
  return shedder_ ? &shedder_->model() : nullptr;
}

std::uint64_t EspiceOperator::drops() const {
  return shedder_ ? shedder_->drops() : 0;
}

std::uint64_t EspiceOperator::decisions() const {
  return shedder_ ? shedder_->decisions() : 0;
}

std::size_t EspiceOperator::windows_observed() const {
  return builder_ ? builder_->windows_observed() : sizing_count_;
}

OperatorStats EspiceOperator::stats() const {
  OperatorStats s;
  s.phase = phase_;
  s.events = events_;
  s.memberships = memberships_;
  s.memberships_kept = memberships_kept_;
  s.windows_closed = windows_closed_;
  s.matches = matches_;
  s.decisions = decisions();
  s.drops = drops();
  s.retrains = retrains_;
  s.windows_observed = windows_observed();
  s.shedding_active = shedding_active();
  return s;
}

}  // namespace espice
