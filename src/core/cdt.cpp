#include "core/cdt.hpp"

namespace espice {

int Cdt::threshold(double x) const {
  for (int u = 0; u <= kMaxUtility; ++u) {
    if (table_[static_cast<std::size_t>(u)] >= x) return u;
  }
  return kMaxUtility;
}

std::vector<Cdt> Cdt::build_partitions(const UtilityModel& model,
                                       std::size_t partitions) {
  ESPICE_REQUIRE(partitions > 0, "need at least one partition");
  const std::size_t n = model.n_positions();
  const std::size_t m = model.num_types();
  std::vector<Cdt> out(partitions);

  // Occurrence counting (Algorithm 1 lines 2-5), per partition.  We walk the
  // normalized position space so that bin columns straddling a partition
  // boundary contribute proportionally to both partitions.
  for (std::size_t p = 0; p < n; ++p) {
    const std::size_t part = p * partitions / n;
    const std::size_t col = p / model.bin_size();
    const double width = static_cast<double>(model.col_width(col));
    for (std::size_t t = 0; t < m; ++t) {
      const auto type = static_cast<EventTypeId>(t);
      const double share_per_pos = model.share_cell(type, col) / width;
      if (share_per_pos <= 0.0) continue;
      const int u = model.utility_cell(type, col);
      out[part].table_[static_cast<std::size_t>(u)] += share_per_pos;
    }
  }

  // Accumulate in ascending utility order (Algorithm 1 lines 7-9).
  for (auto& cdt : out) {
    for (int u = 1; u <= kMaxUtility; ++u) {
      cdt.table_[static_cast<std::size_t>(u)] +=
          cdt.table_[static_cast<std::size_t>(u - 1)];
    }
  }
  return out;
}

}  // namespace espice
