#include "cep/event_store.hpp"

#include "durability/serial.hpp"

namespace espice {

void EventStore::serialize(durability::SnapshotWriter& w) const {
  w.u64(head_);
  w.u64(tail_);
  for (Slot s = head_; s != tail_; ++s) w.event(ring_[s & mask_]);
}

void EventStore::restore(durability::SnapshotReader& r) {
  head_ = r.u64();
  tail_ = r.u64();
  ESPICE_CHECK(head_ <= tail_, ErrorCode::kCorruptSnapshot,
               "event store span inverted");
  // 34 bytes per packed event: a corrupt span cannot drive a huge reserve.
  ESPICE_CHECK(tail_ - head_ <= r.remaining() / 34,
               ErrorCode::kCorruptSnapshot,
               "event store span exceeds snapshot payload");
  std::size_t cap = kInitialCapacity;
  while (tail_ - head_ > cap) cap *= 2;
  ring_.assign(cap, Event{});
  mask_ = cap - 1;
  for (Slot s = head_; s != tail_; ++s) ring_[s & mask_] = r.event();
}

void EventStore::grow() {
  std::vector<Event> bigger(ring_.size() * 2);
  const std::uint64_t new_mask = bigger.size() - 1;
  // Re-lay out the live span; slot ids stay valid because indexing is
  // slot & mask, not a stored offset.
  for (Slot s = head_; s != tail_; ++s) {
    bigger[s & new_mask] = ring_[s & mask_];
  }
  ring_ = std::move(bigger);
  mask_ = new_mask;
}

}  // namespace espice
