#include "cep/event_store.hpp"

namespace espice {

void EventStore::grow() {
  std::vector<Event> bigger(ring_.size() * 2);
  const std::uint64_t new_mask = bigger.size() - 1;
  // Re-lay out the live span; slot ids stay valid because indexing is
  // slot & mask, not a stored offset.
  for (Slot s = head_; s != tail_; ++s) {
    bigger[s & new_mask] = ring_[s & mask_];
  }
  ring_ = std::move(bigger);
  mask_ = new_mask;
}

}  // namespace espice
