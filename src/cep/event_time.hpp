// Event-time ingestion: bounded disorder buffering, watermarks and
// late-event handling.
//
// Real streams arrive disordered.  The engine tolerates a bounded amount
// of disorder D (the "disorder bound", measured in sequence numbers): an
// event is ON TIME iff at most D events with larger sequence numbers
// arrived before it, and LATE otherwise.  The reorder stage buffers
// on-time events and releases them in sequence order once the watermark
// passes them, so everything downstream (window routing, shedding, the
// incremental matcher, the canonical shard merge) still observes an
// in-order stream.
//
// Watermark model.  The stage maintains a sequence watermark W meaning
// "every event with seq <= W has been released (or diverted as late)".
//  * Progress watermark: once max_seq (largest sequence number seen) is
//    at least D + 1, W advances to max_seq - D - 1 -- the newest event
//    that can no longer be displaced by a within-bound straggler.
//  * Punctuation watermark: an in-band kWatermarkType event with seq P
//    raises W to max(W, P) immediately (the producer asserts nothing
//    with seq <= P is still in flight).
// W is monotone; every advance releases the buffered events with
// seq <= W in sequence order.  An arriving data event with seq <= W is
// late (its lateness exceeded D, or a punctuation overtook it) and is
// diverted to the configured LatePolicy instead of entering the stream.
//
// Determinism contract: for any input that is a permutation of an
// in-order stream with measured disorder <= D, the released stream is
// exactly the sequence-sorted stream, there are zero late events, and
// the downstream pipeline output is bit-identical to the in-order run.
//
// Late policies:
//  * kDrop: count and discard.
//  * kSideOutput: capture the event (with the watermark that convicted
//    it and the retained windows it would have belonged to) in a side
//    channel surfaced through the engine report.
//  * kRevise: re-open the affected retained window(s), splice the late
//    event in at its sequence position, re-finalize with the legacy
//    matcher, and re-emit the window's matches under a monotonically
//    increasing per-window revision tag.
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <span>
#include <vector>

#include "cep/event.hpp"
#include "cep/matcher.hpp"
#include "cep/window.hpp"
#include "common/error.hpp"

namespace espice {

namespace durability {
class SnapshotWriter;
class SnapshotReader;
}  // namespace durability

/// What happens to an event that arrives beyond the disorder bound.
enum class LatePolicy : std::uint8_t {
  kDrop = 0,        ///< count and discard
  kSideOutput = 1,  ///< capture in a side channel (engine report)
  kRevise = 2,      ///< re-finalize the affected retained window(s)
};

/// Event-time configuration (StreamEngineConfig::event_time).
struct EventTimeConfig {
  /// Maximum tolerated lateness D, in sequence numbers: an event
  /// overtaken by at most D larger-seq events is still on time.  0
  /// accepts only in-order input (any overtaken event is late).
  std::uint64_t disorder_bound = 64;

  /// Router heartbeat period: after every `heartbeat_events` data
  /// events pushed, the router injects a seq-only punctuation at its
  /// own watermark (max routed seq - D - 1) so idle shards keep
  /// closing time windows.  0 disables heartbeats.
  std::uint64_t heartbeat_events = 0;

  LatePolicy late_policy = LatePolicy::kDrop;

  /// Closed windows retained per windowing group for kSideOutput
  /// attribution and kRevise re-finalization.  A late event older than
  /// the retention horizon is counted as dropped.
  std::size_t revise_horizon_windows = 8;

  /// Shedding hook: utility boost applied by EspiceShedder while the
  /// late policy is kRevise (events kept now cannot force a revision
  /// later, so keeping is worth more).  0 leaves shedding untouched.
  int revise_utility_boost = 0;

  void validate() const {
    ESPICE_REQUIRE(revise_horizon_windows > 0 ||
                       late_policy == LatePolicy::kDrop,
                   "side-output / revise need a retention horizon");
    ESPICE_REQUIRE(revise_utility_boost >= 0,
                   "revise utility boost must be non-negative");
  }
};

/// Bounded-disorder reorder stage: buffers on-time events, releases
/// them in sequence order as the watermark advances, classifies
/// beyond-bound arrivals as late.  Single-threaded; one per shard.
class ReorderBuffer {
 public:
  explicit ReorderBuffer(std::uint64_t disorder_bound)
      : bound_(disorder_bound) {}

  /// Outcome of offering one data event to the stage.
  enum class Accept : std::uint8_t {
    kBuffered,  ///< on time; buffered (some events may have released)
    kLate,      ///< seq <= watermark: diverted to the late policy
  };

  /// Offers a data event.  Released events (in sequence order) are
  /// appended to `released`; the offered event itself may be among
  /// them.  Precondition: !is_watermark(e).
  Accept accept(const Event& e, std::vector<Event>& released) {
    ESPICE_ASSERT(!is_watermark(e), "watermarks take punctuate()");
    if (wm_valid_ && e.seq <= wm_seq_) return Accept::kLate;
    if (!max_valid_ || e.seq > max_seq_) {
      max_seq_ = e.seq;
      max_valid_ = true;
    }
    heap_.push_back(e);
    std::push_heap(heap_.begin(), heap_.end(), seq_greater);
    if (heap_.size() > peak_buffered_) peak_buffered_ = heap_.size();
    if (max_valid_ && max_seq_ >= bound_ + 1) {
      raise_watermark(max_seq_ - bound_ - 1, released);
    }
    return Accept::kBuffered;
  }

  /// Punctuation watermark: raises W to max(W, seq) and releases.
  void punctuate(std::uint64_t seq, std::vector<Event>& released) {
    raise_watermark(seq, released);
  }

  /// End of stream: releases everything still buffered, in sequence
  /// order.  The watermark advances past the last released event.
  void flush(std::vector<Event>& released) {
    while (!heap_.empty()) pop_min(released);
  }

  bool has_watermark() const { return wm_valid_; }
  std::uint64_t watermark_seq() const { return wm_seq_; }
  std::size_t buffered() const { return heap_.size(); }
  std::size_t peak_buffered() const { return peak_buffered_; }
  std::uint64_t disorder_bound() const { return bound_; }

  void serialize(durability::SnapshotWriter& w) const;
  void restore(durability::SnapshotReader& r);

 private:
  static bool seq_greater(const Event& a, const Event& b) {
    return a.seq > b.seq;  // min-heap on seq
  }

  void pop_min(std::vector<Event>& released) {
    std::pop_heap(heap_.begin(), heap_.end(), seq_greater);
    released.push_back(heap_.back());
    heap_.pop_back();
    if (!wm_valid_ || released.back().seq > wm_seq_) {
      wm_seq_ = released.back().seq;
      wm_valid_ = true;
    }
  }

  void raise_watermark(std::uint64_t seq, std::vector<Event>& rel) {
    if (wm_valid_ && seq <= wm_seq_) return;
    while (!heap_.empty() && heap_.front().seq <= seq) pop_min(rel);
    wm_seq_ = seq;
    wm_valid_ = true;
  }

  std::uint64_t bound_;
  std::vector<Event> heap_;  // min-heap keyed on seq
  std::uint64_t max_seq_ = 0;
  bool max_valid_ = false;
  std::uint64_t wm_seq_ = 0;
  bool wm_valid_ = false;
  std::size_t peak_buffered_ = 0;
};

/// Maximum lateness over `events` in arrival order: the largest value
/// of (max seq seen so far) - e.seq over all events.  An engine with
/// disorder_bound >= this value classifies no event of the stream as
/// late.  Watermark punctuations are skipped.
std::uint64_t measure_disorder(std::span<const Event> events);

/// A closed window retained for late-event attribution / revision:
/// the materialized window plus its per-kept-event query masks (empty
/// when all queries agree) and the revision counter.
struct RetainedWindow {
  Window win;
  std::vector<QueryMask> masks;  ///< parallel to win.kept; may be empty
  std::uint64_t last_seq = 0;    ///< max kept seq (coverage bound)
  std::uint64_t revisions = 0;   ///< revision tag counter (monotone)
};

/// One re-emission of a revised window for one query.
struct RevisionRecord {
  std::uint64_t late_seq = 0;  ///< seq of the triggering late event
  WindowId window = 0;
  std::uint64_t revision = 0;  ///< 1-based, monotone per window
  std::vector<ComplexEvent> matches;  ///< full re-finalized match set
};

/// A late event captured by LatePolicy::kSideOutput, with the
/// watermark that convicted it and the retained windows it would have
/// belonged to (empty when it predates the retention horizon).
struct SideOutputRecord {
  Event event;
  std::uint64_t watermark_seq = 0;
  std::vector<WindowId> windows;
};

/// Bounded FIFO of retained closed windows for one windowing group.
class RetainedWindowStore {
 public:
  RetainedWindowStore(WindowSpec spec, std::size_t capacity)
      : spec_(spec), capacity_(capacity) {}

  /// Materializes and retains a freshly closed window, evicting the
  /// oldest beyond the horizon.
  void retain(const WindowView& v);

  /// Indexes (oldest first) of retained windows that would have
  /// contained `e` had it arrived on time.  Time spans use the
  /// [open_ts, open_ts + span) interval; count/predicate spans use the
  /// [open_seq, last kept seq] range.
  std::vector<std::size_t> covering(const Event& e) const;

  /// Splices `e` into retained window `idx` at its sequence position,
  /// exactly as if it had arrived on time and been kept by every
  /// query: arrival positions at and after the insertion shift by one
  /// and the window's arrival count grows by one.  Returns false (no
  /// state change) if the seq is already present.  Bumps the revision
  /// tag on success.
  bool insert_event(std::size_t idx, const Event& e);

  RetainedWindow& at(std::size_t idx) { return ring_[idx]; }
  const RetainedWindow& at(std::size_t idx) const { return ring_[idx]; }
  std::size_t size() const { return ring_.size(); }

  void serialize(durability::SnapshotWriter& w) const;
  void restore(durability::SnapshotReader& r);

 private:
  WindowSpec spec_;
  std::size_t capacity_;
  std::deque<RetainedWindow> ring_;  // oldest at front
};

}  // namespace espice
