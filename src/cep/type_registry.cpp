#include "cep/type_registry.hpp"

#include <limits>

#include "common/error.hpp"

namespace espice {

EventTypeId TypeRegistry::intern(std::string_view name) {
  if (auto it = ids_.find(std::string(name)); it != ids_.end()) {
    return it->second;
  }
  ESPICE_REQUIRE(names_.size() < std::numeric_limits<EventTypeId>::max(),
                "event-type universe exceeds EventTypeId range");
  const auto id = static_cast<EventTypeId>(names_.size());
  names_.emplace_back(name);
  ids_.emplace(names_.back(), id);
  return id;
}

EventTypeId TypeRegistry::id_of(std::string_view name) const {
  const auto it = ids_.find(std::string(name));
  ESPICE_REQUIRE(it != ids_.end(), "unknown event-type name");
  return it->second;
}

bool TypeRegistry::contains(std::string_view name) const {
  return ids_.find(std::string(name)) != ids_.end();
}

const std::string& TypeRegistry::name_of(EventTypeId id) const {
  ESPICE_REQUIRE(id < names_.size(), "event-type id out of range");
  return names_[id];
}

}  // namespace espice
