// Shared event storage for the window engine.
//
// Overlapping windows (slide < span, or one predicate-opened window per
// opener event) used to *copy* every kept event into every open window,
// making the operator's memory and copy cost O(events x overlap factor).
// EventStore fixes the memory model: every kept event is appended exactly
// once to a single ring buffer, and windows reference it by a stable,
// monotonically increasing slot id.  Windows become cheap index views;
// the payload cost is O(events) regardless of how many windows overlap.
//
// Lifecycle contract (enforced by WindowManager, which owns the store):
//  * append() returns the slot id of the stored event,
//  * at(slot) is valid until trim_before() reclaims the slot,
//  * trim_before(s) declares every slot < s dead; the ring space is reused
//    without deallocation or destruction (Event is trivially copyable).
//
// The ring grows by doubling when the live span [begin_slot, end_slot)
// outgrows the capacity, so the steady-state footprint tracks the largest
// number of simultaneously live kept events, not the stream length.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "cep/event.hpp"
#include "common/error.hpp"

namespace espice::durability {
class SnapshotWriter;
class SnapshotReader;
}  // namespace espice::durability

namespace espice {

class EventStore {
 public:
  /// Stable, monotonically increasing id of a stored event.
  using Slot = std::uint64_t;

  EventStore() : ring_(kInitialCapacity), mask_(kInitialCapacity - 1) {}

  /// Stores a copy of `e`; O(1) amortized.
  Slot append(const Event& e) {
    if (tail_ - head_ == ring_.size()) grow();
    ring_[tail_ & mask_] = e;
    return tail_++;
  }

  /// Stores copies of `events[0..n)` in consecutive slots and returns the
  /// slot of the first (the block occupies [result, result + n)).  The copy
  /// runs over at most two contiguous ring segments, so the per-event cost
  /// is a plain memcpy share -- this is the bulk half of the batched
  /// ingestion path (WindowManager::offer_keep_all_block).
  Slot append_block(const Event* events, std::size_t n) {
    while (tail_ - head_ + n > ring_.size()) grow();
    const Slot base = tail_;
    const std::size_t start = static_cast<std::size_t>(tail_ & mask_);
    const std::size_t first = std::min(n, ring_.size() - start);
    std::copy_n(events, first,
                ring_.begin() + static_cast<std::ptrdiff_t>(start));
    std::copy_n(events + first, n - first, ring_.begin());
    tail_ += n;
    return base;
  }

  /// The event stored at `slot`; the slot must be live.
  const Event& at(Slot slot) const {
    ESPICE_ASSERT(slot >= head_ && slot < tail_, "EventStore slot not live");
    return ring_[slot & mask_];
  }

  /// Declares every slot < `s` dead, allowing the ring space to be reused.
  void trim_before(Slot s) {
    if (s > head_) head_ = s < tail_ ? s : tail_;
  }

  Slot begin_slot() const { return head_; }
  /// One past the newest stored slot (== the slot the next append returns).
  Slot end_slot() const { return tail_; }

  /// Live (not yet trimmed) events.
  std::size_t size() const { return static_cast<std::size_t>(tail_ - head_); }
  std::size_t capacity() const { return ring_.size(); }
  /// Bytes held by the ring allocation.
  std::size_t footprint_bytes() const { return ring_.size() * sizeof(Event); }

  /// Snapshot / restore (durability layer): the live span [begin_slot,
  /// end_slot) with its absolute slot ids, so window records referencing
  /// slots stay valid across a restore.
  void serialize(durability::SnapshotWriter& w) const;
  void restore(durability::SnapshotReader& r);

 private:
  static constexpr std::size_t kInitialCapacity = 256;  // power of two

  void grow();

  std::vector<Event> ring_;
  std::uint64_t mask_;
  Slot head_ = 0;  ///< oldest live slot
  Slot tail_ = 0;  ///< next slot to assign
};

}  // namespace espice
