// Naive copy-per-window reference implementation of the window engine.
//
// This is the seed WindowManager preserved verbatim in behaviour: every open
// window owns a std::vector<Event> and every kept event is copied into every
// window that keeps it, keep() locates its window by binary search, and
// closing erases from the middle of the deque.  Memory and copy cost are
// O(events x overlap factor).
//
// It exists for two consumers and must NOT be used on the hot path:
//  * the window-oracle property test, which asserts that the shared-store
//    WindowManager produces identical (window, position, kept) contents on
//    randomized streams,
//  * bench_fig10, which quantifies the zero-copy engine's speed/memory win
//    against this baseline.
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <vector>

#include "cep/window.hpp"

namespace espice {

class ReferenceWindowManager {
 public:
  explicit ReferenceWindowManager(WindowSpec spec) : spec_(std::move(spec)) {
    spec_.validate();
  }

  struct Membership {
    WindowId window;
    std::uint32_t position;
  };

  std::vector<Membership>& offer(const Event& e) {
    scratch_.clear();

    auto expired = [&](const RefWindow& w) {
      switch (spec_.span_kind) {
        case WindowSpan::kTime:
          return e.ts >= w.win.open_ts + spec_.span_seconds;
        case WindowSpan::kCount:
          return w.win.arrivals >= spec_.span_events;
        case WindowSpan::kPredicate:
          return w.close_pending || w.win.arrivals >= spec_.span_events;
      }
      return false;  // unreachable
    };
    for (std::size_t i = 0; i < open_.size();) {
      if (expired(open_[i])) {
        closed_size_sum_ += static_cast<double>(open_[i].win.arrivals);
        ++closed_count_;
        closed_.push_back(std::move(open_[i].win));
        open_.erase(open_.begin() + static_cast<std::ptrdiff_t>(i));
      } else {
        ++i;
      }
    }

    switch (spec_.open_kind) {
      case WindowOpen::kPredicate:
        if (spec_.opener.matches(e)) open_window(e);
        break;
      case WindowOpen::kCountSlide:
        if (events_seen_ % spec_.slide_events == 0) open_window(e);
        break;
    }
    ++events_seen_;

    scratch_.reserve(open_.size());
    for (auto& w : open_) {
      scratch_.push_back(Membership{
          w.win.id, static_cast<std::uint32_t>(w.win.arrivals)});
      ++w.win.arrivals;
    }

    if (spec_.span_kind == WindowSpan::kPredicate && spec_.closer.matches(e)) {
      for (auto& w : open_) w.close_pending = true;
    }
    return scratch_;
  }

  void keep(const Membership& m, const Event& e) {
    // Ids are assigned in open order, so open_ is sorted by id.
    auto it = std::lower_bound(
        open_.begin(), open_.end(), m.window,
        [](const RefWindow& w, WindowId target) { return w.win.id < target; });
    ESPICE_ASSERT(it != open_.end() && it->win.id == m.window,
                  "keep() on a window that is not open");
    it->win.kept.push_back(e);
    it->win.kept_pos.push_back(m.position);
  }

  std::vector<Window> drain_closed() {
    std::vector<Window> out;
    out.swap(closed_);
    return out;
  }

  void close_all() {
    for (auto& w : open_) {
      closed_size_sum_ += static_cast<double>(w.win.arrivals);
      ++closed_count_;
      closed_.push_back(std::move(w.win));
    }
    open_.clear();
    scratch_.clear();
  }

  std::size_t open_count() const { return open_.size(); }
  std::uint64_t windows_opened() const { return next_id_; }
  double avg_closed_window_size() const {
    if (closed_count_ == 0) return 0.0;
    return closed_size_sum_ / static_cast<double>(closed_count_);
  }

  /// Kept-event payload bytes currently resident (copies in open and
  /// undrained windows) -- the quantity that scales with the overlap factor.
  std::size_t resident_payload_bytes() const {
    std::size_t events = 0;
    for (const auto& w : open_) events += w.win.kept.size();
    for (const auto& w : closed_) events += w.kept.size();
    return events * sizeof(Event);
  }

 private:
  struct RefWindow {
    Window win;
    bool close_pending = false;
  };

  void open_window(const Event& e) {
    RefWindow w;
    w.win.id = next_id_++;
    w.win.open_ts = e.ts;
    w.win.open_seq = e.seq;
    open_.push_back(std::move(w));
  }

  WindowSpec spec_;
  std::deque<RefWindow> open_;
  std::vector<Window> closed_;
  std::vector<Membership> scratch_;
  WindowId next_id_ = 0;
  std::uint64_t events_seen_ = 0;
  std::uint64_t closed_count_ = 0;
  double closed_size_sum_ = 0.0;
};

}  // namespace espice
