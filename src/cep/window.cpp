#include "cep/window.hpp"

#include <algorithm>
#include <bit>

#include "durability/serial.hpp"

namespace espice {

Window materialize(const WindowView& v) {
  Window w;
  w.id = v.id;
  w.open_ts = v.open_ts;
  w.open_seq = v.open_seq;
  w.open_index = v.open_index;
  w.arrivals = v.arrivals;
  const std::size_t n = v.kept_count();
  w.kept.reserve(n);
  w.kept_pos.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    w.kept.push_back(v.kept(i));
    w.kept_pos.push_back(v.pos(i));
  }
  return w;
}

namespace {

/// Same type set and direction filter (names are diagnostics only).
bool same_element_filter(const ElementSpec& a, const ElementSpec& b) {
  return a.direction == b.direction && a.types.is_any() == b.types.is_any() &&
         a.types.members() == b.types.members();
}

/// Index of the first set bit at or after `from` in an n-bit bitmap
/// (keep-bitmap layout: bit j lives in word j / 64); n when none.
std::size_t next_set_bit(const std::uint64_t* bits, std::size_t from,
                         std::size_t n) {
  if (from >= n) return n;
  const std::size_t words = (n + 63) / 64;
  std::size_t w = from >> 6;
  std::uint64_t word = bits[w] & (~std::uint64_t{0} << (from & 63));
  while (word == 0) {
    if (++w >= words) return n;
    word = bits[w];
  }
  const std::size_t bit =
      (w << 6) + static_cast<std::size_t>(std::countr_zero(word));
  return bit < n ? bit : n;
}

}  // namespace

bool same_windowing(const WindowSpec& a, const WindowSpec& b) {
  if (a.span_kind != b.span_kind || a.open_kind != b.open_kind) return false;
  switch (a.span_kind) {
    case WindowSpan::kTime:
      if (a.span_seconds != b.span_seconds) return false;
      break;
    case WindowSpan::kCount:
      if (a.span_events != b.span_events) return false;
      break;
    case WindowSpan::kPredicate:
      if (a.span_events != b.span_events ||
          !same_element_filter(a.closer, b.closer)) {
        return false;
      }
      break;
  }
  switch (a.open_kind) {
    case WindowOpen::kPredicate:
      return same_element_filter(a.opener, b.opener);
    case WindowOpen::kCountSlide:
      return a.slide_events == b.slide_events;
  }
  return false;  // unreachable
}

WindowView filter_view_for_query(const WindowView& full, std::size_t query,
                                 std::vector<KeptEntry>& scratch) {
  ESPICE_REQUIRE(full.store != nullptr,
                 "per-query filtering needs a store-backed view");
  ESPICE_REQUIRE(full.kept_masks.size() == full.kept_entries.size(),
                 "view has no per-query keep masks");
  ESPICE_ASSERT(query < kMaxQueriesPerWindowManager, "query bit out of range");
  const QueryMask bit = QueryMask{1} << query;
  scratch.clear();
  for (std::size_t i = 0; i < full.kept_entries.size(); ++i) {
    if ((full.kept_masks[i] & bit) != 0) {
      scratch.push_back(full.kept_entries[i]);
    }
  }
  WindowView v = full;
  v.kept_entries = scratch;
  v.kept_masks = {};
  return v;
}

WindowManager::WindowManager(WindowSpec spec, bool track_masks)
    : spec_(std::move(spec)), track_masks_(track_masks) {
  spec_.validate();
}

bool WindowManager::record_expired(const WindowRecord& w,
                                   const Event& e) const {
  switch (spec_.span_kind) {
    case WindowSpan::kTime:
      return e.ts >= w.open_ts + spec_.span_seconds;
    case WindowSpan::kCount:
      return events_seen_ - w.open_index >= spec_.span_events;
    case WindowSpan::kPredicate:
      return w.close_pending ||
             events_seen_ - w.open_index >= spec_.span_events;
  }
  return false;  // unreachable
}

void WindowManager::close_expired_front() {
  // Erase the dead prefix once it outgrows the live part; amortized O(1)
  // moves per closed window.
  if (open_head_ == open_.size()) {
    open_.clear();
    open_head_ = 0;
  } else if (open_head_ > 32 && open_head_ > open_.size() - open_head_) {
    open_.erase(open_.begin(),
                open_.begin() + static_cast<std::ptrdiff_t>(open_head_));
    open_head_ = 0;
  }
}

void WindowManager::compact_close_predicate(const Event& e) {
  // Predicate-closed windows may close out of open order: one compaction
  // pass moves survivors forward (never a mid-container erase).  Runs only
  // on offers where a closer fired or the front hit its safety cap.
  std::size_t out = open_head_;
  for (std::size_t i = open_head_; i < open_.size(); ++i) {
    if (record_expired(open_[i], e)) {
      close_record(std::move(open_[i]));
    } else {
      if (out != i) open_[out] = std::move(open_[i]);
      ++out;
    }
  }
  open_.resize(out);
}

std::vector<WindowManager::Membership>& WindowManager::offer(const Event& e) {
  // The previous event's keep fate is final now; report it before any
  // window containing it can close below.
  if (feed_ != nullptr) flush_feed();
  scratch_.clear();
  event_in_store_ = false;
  const std::uint64_t idx = events_seen_;

  // 1. Close windows that can no longer accept events.  Every open window
  //    receives every event, so arrivals = idx - open_index and the oldest
  //    window always reaches a time/count span (or the predicate safety
  //    cap) first: FIFO head advance, O(1) amortized.  With the current
  //    all-windows closer semantics the expired set is always such a
  //    prefix; the deferred compaction pass below only sweeps out-of-order
  //    stragglers after a closer fired (never a mid-container erase).
  while (open_head_ < open_.size() && record_expired(open_[open_head_], e)) {
    close_record(std::move(open_[open_head_]));
    ++open_head_;
  }
  close_expired_front();
  if (any_close_pending_) {
    any_close_pending_ = false;
    if (open_head_ < open_.size()) compact_close_predicate(e);
  }

  // 2. Open a new window if the spec says so.  The opening event itself is
  //    the new window's first (position 0) event.
  switch (spec_.open_kind) {
    case WindowOpen::kPredicate:
      if (spec_.opener.matches(e)) open_window(e);
      break;
    case WindowOpen::kCountSlide:
      if (idx % spec_.slide_events == 0) open_window(e);
      break;
  }

  // 3. Route the event to every open window.  Positions are computed from
  //    the open index; no window state is touched.
  scratch_.reserve(open_.size() - open_head_);
  for (std::size_t i = open_head_; i < open_.size(); ++i) {
    const WindowRecord& w = open_[i];
    const std::uint64_t position = idx - w.open_index;
    ESPICE_ASSERT(position < (1ULL << 32), "window position overflows 32 bits");
    scratch_.push_back(Membership{w.id, static_cast<std::uint32_t>(position),
                                  static_cast<std::uint32_t>(i)});
  }

  // 4. Pattern-based closing: a closer event ends every open window (it is
  //    part of them -- it was routed above -- and they close before the
  //    next event).
  if (spec_.span_kind == WindowSpan::kPredicate && spec_.closer.matches(e)) {
    for (std::size_t i = open_head_; i < open_.size(); ++i) {
      open_[i].close_pending = true;
    }
    any_close_pending_ = open_head_ < open_.size();
  }
  if (feed_ != nullptr && !scratch_.empty()) {
    // Arm the pending feed record; keep() calls below fill in the masks.
    pending_valid_ = true;
    pending_event_ = e;
    pending_index_ = idx;
    pending_mcount_ = scratch_.size();
    pending_keeps_ = 0;
    pending_and_ = ~QueryMask{0};
    pending_or_ = 0;
  }
  ++events_seen_;
  return scratch_;
}

void WindowManager::flush_feed() {
  if (!pending_valid_) return;
  pending_valid_ = false;
  if (pending_or_ == 0) return;  // kept nowhere: not part of any window
  // A query kept the event uniformly iff every membership was kept and the
  // query's bit was set in every keep mask.
  const QueryMask uniform =
      pending_keeps_ == pending_mcount_ ? pending_and_ : QueryMask{0};
  feed_->on_event_kept(pending_event_, pending_index_, uniform,
                       pending_or_ & ~uniform);
}

void WindowManager::keep(const Membership& m, const Event& e, QueryMask mask) {
  ESPICE_ASSERT(m.open_index < open_.size(), "stale membership handle");
  ESPICE_ASSERT(mask != 0, "keep() with an empty query mask");
  // A partial mask on a non-tracking manager would be silently widened to
  // "kept for every query" -- fail loudly instead.
  ESPICE_ASSERT(track_masks_ || mask == ~QueryMask{0},
                "partial query mask on a manager that does not track masks");
  WindowRecord& w = open_[m.open_index];
  ESPICE_ASSERT(w.id == m.window, "membership does not match its window");
  if (!event_in_store_) {
    current_slot_ = store_.append(e);
    event_in_store_ = true;
  }
  ESPICE_ASSERT(current_slot_ - w.begin_slot < (1ULL << 32),
                "window slot offset overflows 32 bits");
  w.kept.push_back(KeptEntry{
      static_cast<std::uint32_t>(current_slot_ - w.begin_slot), m.position});
  if (track_masks_) w.kept_masks.push_back(mask);
  if (pending_valid_) {
    pending_and_ &= mask;
    pending_or_ |= mask;
    ++pending_keeps_;
  }
}

std::uint64_t WindowManager::offer_keep_all_block(std::span<const Event> block,
                                                 QueryMask mask) {
  ESPICE_ASSERT(mask != 0, "block keep with an empty query mask");
  ESPICE_ASSERT(track_masks_ || mask == ~QueryMask{0},
                "partial query mask on a manager that does not track masks");
  std::uint64_t memberships = 0;
  const std::size_t n = block.size();
  // Bulk runs need boundaries known without touching window state: index
  // arithmetic for count spans/slides, classified match bitmaps for
  // predicate openers/closers.  Time spans close on timestamps and stay
  // scalar.
  const bool bulk_ok = spec_.span_kind != WindowSpan::kTime;
  const bool pred_open = spec_.open_kind == WindowOpen::kPredicate;
  const bool pred_span = spec_.span_kind == WindowSpan::kPredicate;
  if (bulk_ok && pred_open) {
    opener_bits_.resize((n + 63) / 64);
    classify_block(spec_.opener, block.data(), n, opener_bits_.data());
  }
  if (bulk_ok && pred_span) {
    closer_bits_.resize((n + 63) / 64);
    classify_block(spec_.closer, block.data(), n, closer_bits_.data());
  }
  std::size_t i = 0;
  while (i < n) {
    // A deferred predicate close (the event after a closer fired) must run
    // the scalar close/compaction pass before bulk runs can resume.
    if (bulk_ok && !any_close_pending_) {
      // Boundary distance: the next window opening (slide arithmetic, or
      // the next opener-matching event), the next closer-matching event
      // (scalar: it marks every open window close-pending), and the front
      // window's span / safety-cap close.  Inside a run strictly before
      // all of these, the open set is fixed.
      std::uint64_t boundary;
      if (pred_open) {
        boundary = next_set_bit(opener_bits_.data(), i, n) - i;
      } else {
        const std::uint64_t rem = events_seen_ % spec_.slide_events;
        boundary = rem == 0 ? 0 : spec_.slide_events - rem;
      }
      if (pred_span) {
        boundary = std::min<std::uint64_t>(
            boundary, next_set_bit(closer_bits_.data(), i, n) - i);
      }
      if (open_head_ < open_.size()) {
        const std::uint64_t until_close =
            open_[open_head_].open_index + spec_.span_events - events_seen_;
        boundary = std::min(boundary, until_close);
      }
      if (boundary > 0) {
        const auto run = static_cast<std::size_t>(
            std::min<std::uint64_t>(n - i, boundary));
        const std::size_t open_count = open_.size() - open_head_;
        if (feed_ != nullptr) {
          flush_feed();  // the last boundary event's record is final
          if (open_count > 0) {
            // Bulk keeps are uniform by construction: every event of the
            // run lands in every open window with the same mask.
            for (std::size_t j = 0; j < run; ++j) {
              feed_->on_event_kept(block[i + j], events_seen_ + j, mask,
                                   QueryMask{0});
            }
          }
        }
        if (open_count > 0) {
          const EventStore::Slot base =
              store_.append_block(block.data() + i, run);
          for (std::size_t w = open_head_; w < open_.size(); ++w) {
            WindowRecord& rec = open_[w];
            const std::uint64_t off0 = base - rec.begin_slot;
            const std::uint64_t pos0 = events_seen_ - rec.open_index;
            ESPICE_ASSERT(off0 + run <= (1ULL << 32) &&
                              pos0 + run <= (1ULL << 32),
                          "window slot offset / position overflows 32 bits");
            const std::size_t old = rec.kept.size();
            rec.kept.resize(old + run);
            KeptEntry* out = rec.kept.data() + old;
            for (std::size_t j = 0; j < run; ++j) {
              out[j] = KeptEntry{static_cast<std::uint32_t>(off0 + j),
                                 static_cast<std::uint32_t>(pos0 + j)};
            }
            if (track_masks_) {
              rec.kept_masks.insert(rec.kept_masks.end(), run, mask);
            }
          }
          memberships += static_cast<std::uint64_t>(open_count) * run;
        }
        events_seen_ += run;
        i += run;
        continue;
      }
    }
    // Boundary event (or time-span spec): the scalar path handles
    // opening/closing exactly as per-event execution would.
    const Event& e = block[i];
    for (const Membership& m : offer(e)) {
      keep(m, e, mask);
      ++memberships;
    }
    ++i;
  }
  return memberships;
}

std::uint64_t WindowManager::close_free_horizon() const {
  if (spec_.span_kind != WindowSpan::kCount) return 1;
  std::uint64_t next_close;
  if (open_head_ < open_.size()) {
    next_close = open_[open_head_].open_index + spec_.span_events;
  } else {
    // No window is open: the earliest close is a full span after the
    // earliest possible opening.
    std::uint64_t next_open = events_seen_;
    if (spec_.open_kind == WindowOpen::kCountSlide) {
      const std::uint64_t rem = events_seen_ % spec_.slide_events;
      if (rem != 0) next_open += spec_.slide_events - rem;
    }
    next_close = next_open + spec_.span_events;
  }
  ESPICE_ASSERT(next_close >= events_seen_, "close boundary in the past");
  return next_close - events_seen_ + 1;
}

void WindowManager::close_record(WindowRecord&& w) {
  w.arrivals = static_cast<std::size_t>(events_seen_ - w.open_index);
  closed_size_sum_ += static_cast<double>(w.arrivals);
  ++closed_count_;
  closed_.push_back(std::move(w));
}

void WindowManager::recycle_drained() {
  for (auto& r : drained_) {
    r.kept.clear();
    kept_pool_.push_back(std::move(r.kept));
    if (track_masks_) {
      r.kept_masks.clear();
      mask_pool_.push_back(std::move(r.kept_masks));
    }
  }
  drained_.clear();
}

void WindowManager::trim_store() {
  // Slots below every open and undrained window's begin_slot can be
  // reclaimed.  begin_slot is monotone in open order, so the fronts bound
  // the open list and the drained list; closed_ is always empty here
  // (drain_closed() just swapped it out or returned early).
  ESPICE_ASSERT(closed_.empty(), "trim_store() with undrained windows");
  EventStore::Slot floor = store_.end_slot();
  if (open_head_ < open_.size()) {
    floor = std::min(floor, open_[open_head_].begin_slot);
  }
  if (!drained_.empty()) floor = std::min(floor, drained_.front().begin_slot);
  store_.trim_before(floor);
}

WindowView WindowManager::view_of(const WindowRecord& r) const {
  WindowView v;
  v.id = r.id;
  v.open_ts = r.open_ts;
  v.open_seq = r.open_seq;
  v.open_index = r.open_index;
  v.arrivals = r.arrivals;
  v.store = &store_;
  v.begin_slot = r.begin_slot;
  v.kept_entries = r.kept;
  if (track_masks_) v.kept_masks = r.kept_masks;
  return v;
}

const std::vector<WindowView>& WindowManager::drain_closed() {
  // Fast path: nothing closed since the last drain and no views handed out
  // that would need recycling.
  if (closed_.empty() && drained_.empty()) return views_;
  // The previous drain's views die now; recycle their kept lists and
  // release their store slots.
  recycle_drained();
  views_.clear();
  if (!closed_.empty()) {
    drained_.swap(closed_);
    views_.reserve(drained_.size());
    for (const auto& r : drained_) views_.push_back(view_of(r));
  }
  trim_store();
  return views_;
}

void WindowManager::advance_time_watermark(double ts) {
  if (spec_.span_kind != WindowSpan::kTime) return;
  // The previous event's keep fate is final (the watermark orders after
  // it); flush before its windows can close.
  if (feed_ != nullptr) flush_feed();
  while (open_head_ < open_.size() &&
         ts >= open_[open_head_].open_ts + spec_.span_seconds) {
    close_record(std::move(open_[open_head_]));
    ++open_head_;
  }
  close_expired_front();
}

void WindowManager::close_all() {
  if (feed_ != nullptr) flush_feed();
  for (std::size_t i = open_head_; i < open_.size(); ++i) {
    close_record(std::move(open_[i]));
  }
  open_.clear();
  open_head_ = 0;
  scratch_.clear();
  any_close_pending_ = false;
}

double WindowManager::avg_closed_window_size() const {
  if (closed_count_ == 0) return 0.0;
  return closed_size_sum_ / static_cast<double>(closed_count_);
}

std::size_t WindowManager::resident_index_bytes() const {
  std::size_t bytes = 0;
  auto count = [&](const WindowRecord& r) {
    bytes += r.kept.capacity() * sizeof(KeptEntry) +
             r.kept_masks.capacity() * sizeof(QueryMask);
  };
  for (std::size_t i = open_head_; i < open_.size(); ++i) count(open_[i]);
  for (const auto& r : closed_) count(r);
  for (const auto& r : drained_) count(r);
  return bytes;
}

void WindowManager::open_window(const Event& e) {
  WindowRecord w;
  if (!kept_pool_.empty()) {
    w.kept = std::move(kept_pool_.back());
    kept_pool_.pop_back();
  }
  if (track_masks_ && !mask_pool_.empty()) {
    w.kept_masks = std::move(mask_pool_.back());
    mask_pool_.pop_back();
  }
  w.id = next_id_++;
  w.open_ts = e.ts;
  w.open_seq = e.seq;
  w.open_index = events_seen_;
  w.begin_slot = store_.end_slot();
  open_.push_back(std::move(w));
  // The opening event's own keep is still pending (reported at the next
  // offer), so the feed sees the open strictly before position 0's keep.
  if (feed_ != nullptr) feed_->on_window_open(events_seen_);
}

void WindowManager::serialize(durability::SnapshotWriter& w) {
  // Views handed out by the last drain are dead by contract at a
  // checkpoint; recycling them (and trimming the store) is unobservable
  // and keeps the payload at the live working set.  The views must go with
  // their records: drain_closed()'s empty-empty fast path returns views_
  // as-is, so leaving them would replay dead windows after the checkpoint.
  recycle_drained();
  views_.clear();
  if (closed_.empty()) trim_store();

  w.boolean(track_masks_);
  store_.serialize(w);

  const auto write_record = [&](const WindowRecord& r) {
    w.u64(r.id);
    w.f64(r.open_ts);
    w.u64(r.open_seq);
    w.u64(r.open_index);
    w.u64(r.begin_slot);
    w.boolean(r.close_pending);
    w.u64(r.arrivals);
    w.size(r.kept.size());
    for (const KeptEntry& k : r.kept) {
      w.u32(k.slot_offset);
      w.u32(k.position);
    }
    if (track_masks_) {
      for (const QueryMask m : r.kept_masks) w.u64(m);
    }
  };
  w.size(open_.size() - open_head_);
  for (std::size_t i = open_head_; i < open_.size(); ++i) {
    write_record(open_[i]);
  }
  w.size(closed_.size());
  for (const WindowRecord& r : closed_) write_record(r);

  w.u64(next_id_);
  w.event(pending_event_);
  w.u64(pending_index_);
  w.u64(pending_mcount_);
  w.u64(pending_keeps_);
  w.u64(pending_and_);
  w.u64(pending_or_);
  w.boolean(pending_valid_);
  w.u64(events_seen_);
  w.boolean(any_close_pending_);
  w.boolean(event_in_store_);
  w.u64(current_slot_);
  w.u64(closed_count_);
  w.f64(closed_size_sum_);
}

void WindowManager::restore(durability::SnapshotReader& r) {
  ESPICE_CHECK(r.boolean() == track_masks_,
               ErrorCode::kCorruptSnapshot,
               "window snapshot mask mode disagrees with the manager");
  store_.restore(r);

  const auto read_record = [&] {
    WindowRecord rec;
    rec.id = r.u64();
    rec.open_ts = r.f64();
    rec.open_seq = r.u64();
    rec.open_index = r.u64();
    rec.begin_slot = r.u64();
    rec.close_pending = r.boolean();
    rec.arrivals = static_cast<std::size_t>(r.u64());
    const std::size_t kept = r.size();
    rec.kept.reserve(kept);
    for (std::size_t i = 0; i < kept; ++i) {
      KeptEntry k;
      k.slot_offset = r.u32();
      k.position = r.u32();
      rec.kept.push_back(k);
    }
    if (track_masks_) {
      rec.kept_masks.reserve(kept);
      for (std::size_t i = 0; i < kept; ++i) rec.kept_masks.push_back(r.u64());
    }
    return rec;
  };
  open_.clear();
  open_head_ = 0;
  const std::size_t open_count = r.size();
  open_.reserve(open_count);
  for (std::size_t i = 0; i < open_count; ++i) open_.push_back(read_record());
  closed_.clear();
  const std::size_t closed_count = r.size();
  closed_.reserve(closed_count);
  for (std::size_t i = 0; i < closed_count; ++i) {
    closed_.push_back(read_record());
  }
  drained_.clear();
  views_.clear();
  scratch_.clear();

  next_id_ = r.u64();
  pending_event_ = r.event();
  pending_index_ = r.u64();
  pending_mcount_ = static_cast<std::size_t>(r.u64());
  pending_keeps_ = static_cast<std::size_t>(r.u64());
  pending_and_ = r.u64();
  pending_or_ = r.u64();
  pending_valid_ = r.boolean();
  events_seen_ = r.u64();
  any_close_pending_ = r.boolean();
  event_in_store_ = r.boolean();
  current_slot_ = r.u64();
  closed_count_ = r.u64();
  closed_size_sum_ = r.f64();
}

}  // namespace espice
