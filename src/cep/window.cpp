#include "cep/window.hpp"

#include <algorithm>

namespace espice {

WindowManager::WindowManager(WindowSpec spec) : spec_(std::move(spec)) {
  spec_.validate();
}

std::vector<WindowManager::Membership>& WindowManager::offer(const Event& e) {
  scratch_.clear();

  // 1. Close windows that can no longer accept events.  Windows close in
  //    open order: every open window receives every event, so the oldest
  //    window always reaches its span first.
  auto expired = [&](const Window& w) {
    switch (spec_.span_kind) {
      case WindowSpan::kTime:
        return e.ts >= w.open_ts + spec_.span_seconds;
      case WindowSpan::kCount:
        return w.arrivals >= spec_.span_events;
      case WindowSpan::kPredicate:
        return w.close_pending || w.arrivals >= spec_.span_events;
    }
    return false;  // unreachable
  };
  // Predicate-closed windows may close out of open order (an old window may
  // outlive a newer one that saw its closer), so scan the whole deque.
  for (std::size_t i = 0; i < open_.size();) {
    if (expired(open_[i])) {
      closed_size_sum_ += static_cast<double>(open_[i].arrivals);
      ++closed_count_;
      closed_.push_back(std::move(open_[i]));
      open_.erase(open_.begin() + static_cast<std::ptrdiff_t>(i));
    } else {
      ++i;
    }
  }

  // 2. Open a new window if the spec says so.  The opening event itself is
  //    the new window's first (position 0) event.
  switch (spec_.open_kind) {
    case WindowOpen::kPredicate:
      if (spec_.opener.matches(e)) open_window(e);
      break;
    case WindowOpen::kCountSlide:
      if (events_seen_ % spec_.slide_events == 0) open_window(e);
      break;
  }
  ++events_seen_;

  // 3. Route the event to every open window.
  scratch_.reserve(open_.size());
  for (auto& w : open_) {
    ESPICE_ASSERT(w.arrivals < (1ULL << 32), "window position overflows 32 bits");
    scratch_.push_back(Membership{w.id, static_cast<std::uint32_t>(w.arrivals)});
    ++w.arrivals;
  }

  // 4. Pattern-based closing: a closer event ends every open window (it is
  //    part of them -- it was routed above -- and they close before the
  //    next event).
  if (spec_.span_kind == WindowSpan::kPredicate && spec_.closer.matches(e)) {
    for (auto& w : open_) w.close_pending = true;
  }
  return scratch_;
}

void WindowManager::keep(const Membership& m, const Event& e) {
  Window* w = find_open(m.window);
  ESPICE_ASSERT(w != nullptr, "keep() on a window that is not open");
  w->kept.push_back(e);
  w->kept_pos.push_back(m.position);
}

Window* WindowManager::find_open(WindowId id) {
  // Ids are assigned in open order, so open_ is sorted by id.
  auto it = std::lower_bound(
      open_.begin(), open_.end(), id,
      [](const Window& w, WindowId target) { return w.id < target; });
  if (it == open_.end() || it->id != id) return nullptr;
  return &*it;
}

std::vector<Window> WindowManager::drain_closed() {
  std::vector<Window> out;
  out.swap(closed_);
  return out;
}

void WindowManager::close_all() {
  for (auto& w : open_) {
    closed_size_sum_ += static_cast<double>(w.arrivals);
    ++closed_count_;
    closed_.push_back(std::move(w));
  }
  open_.clear();
  scratch_.clear();
}

double WindowManager::avg_closed_window_size() const {
  if (closed_count_ == 0) return 0.0;
  return closed_size_sum_ / static_cast<double>(closed_count_);
}

void WindowManager::open_window(const Event& e) {
  Window w;
  w.id = next_id_++;
  w.open_ts = e.ts;
  w.open_seq = e.seq;
  open_.push_back(std::move(w));
}

}  // namespace espice
