// Primitive event model.
//
// An event carries the meta-data the paper requires (type, global sequence
// number, timestamp) plus a small fixed payload.  Events are value types and
// trivially copyable: windows store copies, which keeps the matcher cache
// friendly and the simulation free of lifetime questions.
#pragma once

#include <cstdint>

namespace espice {

/// Dense identifier for an event type (a stock symbol, a player, ...).
/// Assigned by TypeRegistry, contiguous from 0.
using EventTypeId = std::uint16_t;

/// A primitive event in the input stream.
struct Event {
  EventTypeId type = 0;
  /// Global, gap-free sequence number; defines the total order of the stream.
  std::uint64_t seq = 0;
  /// Source timestamp in seconds (monotone non-decreasing with seq).
  double ts = 0.0;
  /// Primary attribute.  Convention used by the bundled datasets:
  ///  * stock quotes: signed price change (value > 0 means "rising"),
  ///  * RTLS: distance / intensity of the action (sign unused, >= 0).
  double value = 0.0;
  /// Secondary attribute (free for dataset-specific use).
  double aux = 0.0;

  /// Direction of the event as used by query predicates:
  /// +1 if value > 0, -1 if value < 0, 0 if value == 0.
  int direction() const {
    if (value > 0.0) return +1;
    if (value < 0.0) return -1;
    return 0;
  }
};

/// Events are ordered by sequence number; timestamps may tie.
inline bool stream_order_less(const Event& a, const Event& b) {
  return a.seq < b.seq;
}

/// Reserved event type for in-band punctuation watermarks (event-time
/// mode).  A punctuation asserts "no event with seq <= this.seq is still
/// in flight"; `ts` optionally carries the matching event-time bound
/// (value != 0 marks ts as meaningful -- heartbeats are seq-only).
/// Watermarks are control records: operators and shedders must never
/// treat them as data, and the engine's reorder stage consumes them.
inline constexpr EventTypeId kWatermarkType = 0xFFFF;

inline bool is_watermark(const Event& e) { return e.type == kWatermarkType; }

/// Builds a punctuation watermark event.  `ts_valid` marks whether `ts`
/// carries a meaningful event-time bound.
inline Event make_watermark(std::uint64_t seq, double ts = 0.0,
                            bool ts_valid = false) {
  Event p;
  p.type = kWatermarkType;
  p.seq = seq;
  p.ts = ts;
  p.value = ts_valid ? 1.0 : 0.0;
  return p;
}

inline bool watermark_has_ts(const Event& p) { return p.value != 0.0; }

/// Reserved type for partition-migration control markers (rebalance mode).
/// Like watermarks, these are in-band records the router threads through
/// the shard rings so migrations order exactly against the data around
/// them; they never reach a window or matcher.
inline constexpr EventTypeId kPartitionControlType = 0xFFFE;

inline bool is_partition_control(const Event& e) {
  return e.type == kPartitionControlType;
}

enum class PartitionControl : int { kExport = 1, kImport = 2 };

/// Builds a migration marker: `seq` carries the logical partition id,
/// `value` the action.  kExport tells the current owner to hand the
/// partition's pipeline off; kImport tells the new owner to adopt it.
inline Event make_partition_control(PartitionControl action,
                                    std::uint64_t partition) {
  Event c;
  c.type = kPartitionControlType;
  c.seq = partition;
  c.value = static_cast<double>(static_cast<int>(action));
  return c;
}

inline PartitionControl partition_control_action(const Event& c) {
  return static_cast<PartitionControl>(static_cast<int>(c.value));
}

}  // namespace espice
