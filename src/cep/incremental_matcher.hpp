// Stream-level incremental pattern matcher.
//
// The legacy Matcher rescans every closed window from scratch, so with
// slide << span each kept event is re-examined O(overlap) times -- exactly
// the multiplicity the shared-store window engine eliminated for storage,
// still paid in compute.  This class moves matching to the stream level:
// each kept event advances compiled pattern *runs* exactly once, at offer
// time, and window close becomes a finalize-and-emit lookup.
//
// Runs and window-validity intervals.  A run is the greedy binding chain
// anchored at one kept occurrence of the pattern's first element (sequence
// head or trigger).  Under first selection with max_matches_per_window == 1
// the match of a window is a pure function of the window's first in-window
// anchor: skip-till-next matching never looks backwards, so the greedy
// continuation after an anchor is the same in every window that contains
// it.  One run is therefore shared -- as a partial-match prefix while it
// grows and as the whole match once complete -- by every window whose open
// index falls in (previous anchor, anchor]: the run's validity interval.
// Anchors with an empty validity interval (no window opened since the
// previous head match) spawn no run at all, so the live run set is capped
// at the open-window count even for anchor-dense patterns.  finalize()
// resolves a closed window to its first in-window anchor's run and emits
// the bindings iff the run completed before the window's last offered
// event.  Advancing costs O(active runs) per kept event, *independent of
// the overlap factor* (bench_fig10's overlap sweep holds the ns/event flat
// where the per-close rescan grows linearly).
//
// Exactness and the legacy fallback.  The run engine serves first-selection
// patterns (sequences without negated gaps, trigger-any) at
// max_matches_per_window == 1 -- the paper's default setting and every
// bench workload.  Every other configuration (last selection, negations,
// max_matches > 1) keeps bit-identical semantics through the embedded
// legacy Matcher, which scans the closed window's view at finalize()
// exactly as before.  The same fallback covers *dirty* windows: when a
// shedder keeps an event in only part of its windows (a partial keep, see
// KeptFeed), the per-window kept sets diverge from the uniform stream the
// runs were built from, so windows open at that instant take the window
// scan; uniform keeps and uniform drops stay incremental, and windows
// opened after the divergence are clean again.  Either way the output is
// bit-identical to Matcher::match_window() on the window's kept view --
// tests/property/incremental_matcher_oracle_test.cpp holds it to that
// across randomized patterns, policies, shedding and window specs.
//
// Like the legacy matcher, one instance is single-threaded (runs are
// mutable shared state); give each shard its own.
#pragma once

#include <cstdint>
#include <vector>

#include "cep/matcher.hpp"
#include "cep/pattern.hpp"
#include "cep/window.hpp"

namespace espice {

class IncrementalMatcher {
 public:
  IncrementalMatcher(Pattern pattern, SelectionPolicy selection,
                     ConsumptionPolicy consumption,
                     std::size_t max_matches_per_window = 1);

  /// True when this configuration advances stream-level runs (first
  /// selection, no negations, max one match per window); false = every
  /// window takes the legacy scan at finalize().
  bool stream_incremental() const { return eligible_; }

  /// Feed: `e` was kept in EVERY open window containing it (KeptFeed's
  /// `uniform` bit).  Call once per such event, in offer order.
  void on_kept(const Event& e, std::uint64_t offer_index);

  /// Feed: a window opened at `open_index` (KeptFeed::on_window_open).
  /// Anchors only spawn runs when some window maps to them -- a window
  /// opened since the previous head match -- which caps the live run set
  /// at the open-window count even for anchor-dense patterns (a common
  /// head type would otherwise spawn a run per event and make advancing
  /// O(span) instead of O(overlap)).
  void on_window_open(std::uint64_t open_index) {
    if (!eligible_) return;
    last_window_open_ = open_index;
    window_seen_ = true;
  }

  /// Feed: `e` was kept in only part of its windows (KeptFeed's `partial`
  /// bit).  Windows open at `offer_index` fall back to the legacy window
  /// scan at finalize(); windows opened later are clean again.  Runs
  /// anchored at or before the divergence are dropped eagerly -- every
  /// window they could serve is dirty -- so sustained partial shedding
  /// (e.g. position-aware utility drops) keeps the run set near-empty
  /// instead of paying maintenance for scans that happen anyway.
  void on_partial_keep(std::uint64_t offer_index);

  /// Appends the matches of the closed window `w` -- bit-identical to
  /// Matcher(pattern, ...).match_window(w).  Call in window close order
  /// (open order); `w` must come from the manager whose kept feed drives
  /// this matcher (any other view falls back to the legacy scan, which
  /// needs no feed).
  void finalize(const WindowView& w, std::vector<ComplexEvent>& out);
  std::vector<ComplexEvent> finalize(const WindowView& w) {
    std::vector<ComplexEvent> out;
    finalize(w, out);
    return out;
  }

  const Pattern& pattern() const { return legacy_.pattern(); }
  SelectionPolicy selection() const { return legacy_.selection(); }
  ConsumptionPolicy consumption() const { return legacy_.consumption(); }

  /// The embedded window-scan matcher (fallback engine; also what the
  /// differential tests compare against).
  const Matcher& window_scan() const { return legacy_; }

  /// Full legacy re-scan of an arbitrary window view, independent of
  /// this matcher's run state.  Event-time revision uses this: a late
  /// event spliced into a retained window invalidates the runs that
  /// finalized it, so the revision re-derives the match set from the
  /// amended kept list.  (The engine's reorder stage guarantees the
  /// incremental feed itself only ever sees in-sequence events; revised
  /// windows are the one place out-of-anchor-order insertion happens,
  /// and they always take this scan.)
  std::vector<ComplexEvent> rematch_window(const WindowView& w) const {
    return legacy_.match_window(w);
  }

  /// Snapshot / restore of the stream-level run state (durability layer).
  /// The restoring matcher must be constructed with the same pattern and
  /// policies (the legacy engine holds only reusable scratch, so only run
  /// and feed-cursor state travels).
  void serialize(durability::SnapshotWriter& w) const;
  void restore(durability::SnapshotReader& r);

 private:
  /// One shared-prefix run: greedy bindings anchored at idx[0].
  struct Run {
    std::uint64_t anchor = 0;      ///< offer index of the first binding
    std::uint64_t last_index = 0;  ///< offer index of the latest binding
    double max_ts = 0.0;           ///< max constituent ts (detection_ts)
    std::vector<std::uint64_t> idx;  ///< offer index per binding
    std::vector<Event> ev;           ///< event copy per binding
  };

  void advance_runs(const Event& e, std::uint64_t offer_index);
  void start_run(const Event& e, std::uint64_t offer_index);
  void bind(Run& r, const Event& e, std::uint64_t offer_index);
  void emit(const Run& r, const WindowView& w,
            std::vector<ComplexEvent>& out) const;
  void retire_through(std::uint64_t open_index);
  void pop_front(std::vector<Run>& runs, std::size_t& head);
  static void compact(std::vector<Run>& runs, std::size_t& head);

  Matcher legacy_;
  bool eligible_ = false;
  bool trigger_any_ = false;
  std::size_t width_ = 0;  ///< bindings in a full match (match_width)

  // Anchor-ordered run queues (vector + head cursor, the open-window-list
  // idiom).  Completed runs always precede active ones in anchor order: a
  // later anchor binds pointwise later-or-equal events, so it can never
  // out-run an earlier one.  Retired runs park in pool_ with their binding
  // capacity intact, so steady state allocates nothing.
  std::vector<Run> done_;
  std::size_t done_head_ = 0;
  std::vector<Run> active_;
  std::size_t active_head_ = 0;
  std::vector<Run> pool_;

  /// True once any feed call arrived; a store-backed view reaching
  /// finalize() with kept events but no feed ever seen means the host never
  /// wired the KeptFeed -- fall back to the window scan instead of
  /// silently reporting no matches.
  bool feed_seen_ = false;
  /// Open index of the newest window (opens are monotone) and the offer
  /// index of the last kept head-matching event.  An anchor at t spawns a
  /// run iff a window opened in (last_head_match_, t] -- i.e. iff
  /// last_window_open_ > last_head_match_ -- because exactly those windows
  /// have t as their first in-window anchor.
  std::uint64_t last_window_open_ = 0;
  bool window_seen_ = false;
  std::uint64_t last_head_match_ = 0;
  bool head_match_seen_ = false;
  /// Windows with open_index < dirty_end_ saw a diverging keep: fallback.
  std::uint64_t dirty_end_ = 0;
  /// Runs anchored below this were retired (finalize is monotone in
  /// open_index; an out-of-order close below it falls back too).
  std::uint64_t retired_end_ = 0;
};

/// KeptFeed adapter fanning a manager's feed out to one IncrementalMatcher
/// per query bit (bit b of the keep masks drives matchers()[b]).
class MatcherFeed final : public KeptFeed {
 public:
  MatcherFeed() = default;
  explicit MatcherFeed(IncrementalMatcher* single) { add(single); }

  void add(IncrementalMatcher* matcher) { matchers_.push_back(matcher); }

  void on_event_kept(const Event& e, std::uint64_t offer_index,
                     QueryMask uniform, QueryMask partial) override {
    for (std::size_t b = 0; b < matchers_.size(); ++b) {
      const QueryMask bit = QueryMask{1} << b;
      if ((uniform & bit) != 0) {
        matchers_[b]->on_kept(e, offer_index);
      } else if ((partial & bit) != 0) {
        matchers_[b]->on_partial_keep(offer_index);
      }
    }
  }

  void on_window_open(std::uint64_t open_index) override {
    for (IncrementalMatcher* m : matchers_) m->on_window_open(open_index);
  }

 private:
  std::vector<IncrementalMatcher*> matchers_;
};

}  // namespace espice
