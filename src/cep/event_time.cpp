#include "cep/event_time.hpp"

#include <algorithm>

#include "durability/serial.hpp"

namespace espice {

std::uint64_t measure_disorder(std::span<const Event> events) {
  std::uint64_t max_seq = 0;
  bool any = false;
  std::uint64_t worst = 0;
  for (const Event& e : events) {
    if (is_watermark(e)) continue;
    if (any && e.seq < max_seq) {
      worst = std::max(worst, max_seq - e.seq);
    }
    if (!any || e.seq > max_seq) {
      max_seq = e.seq;
      any = true;
    }
  }
  return worst;
}

void ReorderBuffer::serialize(durability::SnapshotWriter& w) const {
  w.u64(bound_);
  // Buffered events in sequence order: restore re-heapifies, and a
  // canonical order keeps snapshots byte-stable across heap layouts.
  std::vector<Event> sorted(heap_);
  std::sort(sorted.begin(), sorted.end(), stream_order_less);
  w.size(sorted.size());
  for (const Event& e : sorted) w.event(e);
  w.boolean(max_valid_);
  w.u64(max_seq_);
  w.boolean(wm_valid_);
  w.u64(wm_seq_);
  // Plain scalar, not a length prefix: u64 (reader-side size() validates
  // against the remaining payload).
  w.u64(peak_buffered_);
}

void ReorderBuffer::restore(durability::SnapshotReader& r) {
  const std::uint64_t bound = r.u64();
  ESPICE_CHECK(bound == bound_, ErrorCode::kCorruptSnapshot,
               "reorder-buffer disorder bound mismatch");
  heap_.clear();
  const std::size_t n = r.size();
  heap_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) heap_.push_back(r.event());
  std::make_heap(heap_.begin(), heap_.end(), seq_greater);
  max_valid_ = r.boolean();
  max_seq_ = r.u64();
  wm_valid_ = r.boolean();
  wm_seq_ = r.u64();
  peak_buffered_ = static_cast<std::size_t>(r.u64());
}

void RetainedWindowStore::retain(const WindowView& v) {
  if (capacity_ == 0) return;
  RetainedWindow rw;
  rw.win = materialize(v);
  if (!v.kept_masks.empty()) {
    rw.masks.assign(v.kept_masks.begin(), v.kept_masks.end());
  }
  for (const Event& e : rw.win.kept) {
    rw.last_seq = std::max(rw.last_seq, e.seq);
  }
  ring_.push_back(std::move(rw));
  while (ring_.size() > capacity_) ring_.pop_front();
}

std::vector<std::size_t> RetainedWindowStore::covering(
    const Event& e) const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    const RetainedWindow& rw = ring_[i];
    if (e.seq < rw.win.open_seq) continue;
    if (spec_.span_kind == WindowSpan::kTime) {
      if (e.ts >= rw.win.open_ts &&
          e.ts < rw.win.open_ts + spec_.span_seconds) {
        out.push_back(i);
      }
    } else {
      // Count/predicate spans: the true membership is by offer index,
      // which a late event no longer has; the kept-seq range is the
      // best reconstruction.  Windows with nothing kept cannot bound
      // their range and are skipped.
      if (!rw.win.kept.empty() && e.seq <= rw.last_seq) {
        out.push_back(i);
      }
    }
  }
  return out;
}

bool RetainedWindowStore::insert_event(std::size_t idx, const Event& e) {
  RetainedWindow& rw = ring_[idx];
  auto& kept = rw.win.kept;
  auto& pos = rw.win.kept_pos;
  std::size_t at = 0;
  while (at < kept.size() && kept[at].seq < e.seq) ++at;
  if (at < kept.size() && kept[at].seq == e.seq) return false;
  // The late event takes the arrival position right after its seq
  // predecessor; every later arrival shifts by one, and the window saw
  // one more arrival -- exactly the in-order bookkeeping.
  const std::uint32_t new_pos = at > 0 ? pos[at - 1] + 1 : 0;
  for (std::size_t i = at; i < pos.size(); ++i) ++pos[i];
  kept.insert(kept.begin() + static_cast<std::ptrdiff_t>(at), e);
  pos.insert(pos.begin() + static_cast<std::ptrdiff_t>(at), new_pos);
  if (!rw.masks.empty()) {
    rw.masks.insert(rw.masks.begin() + static_cast<std::ptrdiff_t>(at),
                    ~QueryMask{0});
  }
  rw.win.arrivals += 1;
  rw.last_seq = std::max(rw.last_seq, e.seq);
  rw.revisions += 1;
  return true;
}

void RetainedWindowStore::serialize(durability::SnapshotWriter& w) const {
  w.u64(capacity_);  // scalar, not a length prefix
  w.size(ring_.size());
  for (const RetainedWindow& rw : ring_) {
    w.u64(rw.win.id);
    w.f64(rw.win.open_ts);
    w.u64(rw.win.open_seq);
    w.u64(rw.win.open_index);
    w.u64(rw.win.arrivals);  // scalar (>= kept count, not == )
    w.size(rw.win.kept.size());
    for (const Event& e : rw.win.kept) w.event(e);
    w.vec_int(rw.win.kept_pos);
    w.vec_int(rw.masks);
    w.u64(rw.last_seq);
    w.u64(rw.revisions);
  }
}

void RetainedWindowStore::restore(durability::SnapshotReader& r) {
  const auto cap = static_cast<std::size_t>(r.u64());
  ESPICE_CHECK(cap == capacity_, ErrorCode::kCorruptSnapshot,
               "retained-window capacity mismatch");
  ring_.clear();
  const std::size_t n = r.size();
  for (std::size_t i = 0; i < n; ++i) {
    RetainedWindow rw;
    rw.win.id = r.u64();
    rw.win.open_ts = r.f64();
    rw.win.open_seq = r.u64();
    rw.win.open_index = r.u64();
    rw.win.arrivals = static_cast<std::size_t>(r.u64());
    const std::size_t k = r.size();
    rw.win.kept.reserve(k);
    for (std::size_t j = 0; j < k; ++j) rw.win.kept.push_back(r.event());
    rw.win.kept_pos = r.vec_int<std::uint32_t>();
    rw.masks = r.vec_int<QueryMask>();
    rw.last_seq = r.u64();
    rw.revisions = r.u64();
    ring_.push_back(std::move(rw));
  }
}

}  // namespace espice
