// Window-local pattern matcher.
//
// Matches one pattern against the kept contents of a closed window and emits
// complex events with full provenance: for every constituent primitive event
// we record which pattern element it bound and its *position* in the window
// (arrival index).  The provenance is exactly what eSPICE's model builder
// consumes -- it never sees matcher internals, keeping the operator a black
// box as the paper assumes.
//
// The matcher consumes a WindowView (shared-store index view) rather than an
// owned window, so matching never copies event payloads; emitted complex
// events still own copies of their few constituents.  Scratch buffers are
// matcher members reused across windows, so the per-window cost is scan work
// only -- no heap allocation at steady state.  Consequence: match_window()
// is NOT safe to call concurrently on one Matcher instance; give each thread
// its own (cheap) copy.
//
// Selection policies:
//  * first: the earliest possible instances are bound,
//  * last:  at completion time the latest instances for earlier elements are
//           bound (implemented with online partial-match replacement, which
//           reproduces the paper's running example exactly).
// Consumption policies (relevant when max_matches_per_window > 1):
//  * consumed: constituents of an emitted match cannot be reused,
//  * zero:     constituents may be reused by later matches.
// All matching uses skip-till-next/any-match: non-matching events between
// constituents are skipped freely.
#pragma once

#include <cstdint>
#include <vector>

#include "cep/event.hpp"
#include "cep/pattern.hpp"
#include "cep/window.hpp"

namespace espice {

/// One primitive event inside a detected complex event.
struct Constituent {
  /// Index of the pattern element this event bound.  For trigger-any
  /// patterns the trigger is element 0 and every any-candidate is element 1
  /// (the candidates are an unordered set, so they are interchangeable).
  std::uint32_t element = 0;
  /// Arrival position of the event in its window.
  std::uint32_t position = 0;
  Event event;
};

/// A detected complex event (one pattern match in one window).
struct ComplexEvent {
  WindowId window = 0;
  /// Timestamp of the constituent that completed the match.
  double detection_ts = 0.0;
  /// Constituents in binding order (trigger first for trigger-any).
  std::vector<Constituent> constituents;
};

class Matcher {
 public:
  Matcher(Pattern pattern, SelectionPolicy selection,
          ConsumptionPolicy consumption,
          std::size_t max_matches_per_window = 1);

  /// Matches the pattern against the window's kept events and returns up to
  /// `max_matches_per_window` complex events.  Not thread-safe per instance
  /// (reuses internal scratch buffers).
  std::vector<ComplexEvent> match_window(const WindowView& w) const;
  std::vector<ComplexEvent> match_window(const Window& w) const {
    return match_window(w.view());
  }

  const Pattern& pattern() const { return pattern_; }
  SelectionPolicy selection() const { return selection_; }
  ConsumptionPolicy consumption() const { return consumption_; }

 private:
  void match_sequence_first(const WindowView& w,
                            std::vector<ComplexEvent>& out) const;
  void match_sequence_first_negated(const WindowView& w,
                                    std::vector<ComplexEvent>& out) const;
  void match_sequence_last(const WindowView& w,
                           std::vector<ComplexEvent>& out) const;
  void match_trigger_any(const WindowView& w,
                         std::vector<ComplexEvent>& out) const;

  ComplexEvent build_match(const WindowView& w,
                           const std::vector<std::size_t>& event_indices,
                           bool trigger_any) const;

  /// Spec forbidden between elements g and g+1, or nullptr.  Indexes into
  /// pattern_.negations (stable under Matcher copies, unlike raw pointers).
  const ElementSpec* negation_for(std::size_t gap) const {
    const int idx = negation_idx_[gap];
    return idx >= 0 ? &pattern_.negations[static_cast<std::size_t>(idx)].spec
                    : nullptr;
  }
  /// Consumed-event tracking is only observable when an emitted match can be
  /// followed by another search pass; otherwise the buffer is never touched.
  bool track_consumed() const {
    return consumption_ == ConsumptionPolicy::kConsumed && max_matches_ > 1;
  }

  Pattern pattern_;
  SelectionPolicy selection_;
  ConsumptionPolicy consumption_;
  std::size_t max_matches_;
  std::vector<int> negation_idx_;  ///< per gap, index into negations or -1

  // Reusable scratch (see class comment on thread-safety).
  mutable std::vector<char> consumed_;
  mutable std::vector<std::size_t> bind_;
  mutable std::vector<std::vector<std::size_t>> partial_;
  mutable std::vector<char> partial_set_;
  mutable std::vector<char> extended_;
  mutable std::vector<std::size_t> chosen_;
  mutable std::vector<char> type_used_;
};

}  // namespace espice
