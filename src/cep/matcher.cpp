#include "cep/matcher.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace espice {

Matcher::Matcher(Pattern pattern, SelectionPolicy selection,
                 ConsumptionPolicy consumption,
                 std::size_t max_matches_per_window)
    : pattern_(std::move(pattern)),
      selection_(selection),
      consumption_(consumption),
      max_matches_(max_matches_per_window) {
  pattern_.validate();
  ESPICE_REQUIRE(max_matches_ > 0, "max_matches_per_window must be positive");
  negation_idx_.assign(pattern_.elements.size(), -1);
  for (std::size_t i = 0; i < pattern_.negations.size(); ++i) {
    negation_idx_[pattern_.negations[i].gap] = static_cast<int>(i);
  }
  // Pre-size the binding scratch to the pattern arity so the very first
  // windows match without touching the heap (the remaining scratch sizes
  // depend on window contents and stabilize after the first few windows).
  bind_.reserve(pattern_.elements.size() + 1);
  chosen_.reserve(pattern_.elements.size() + 1);
}

std::vector<ComplexEvent> Matcher::match_window(const WindowView& w) const {
  std::vector<ComplexEvent> out;
  if (w.kept_count() == 0) return out;
  switch (pattern_.kind) {
    case PatternKind::kSequence:
      if (selection_ == SelectionPolicy::kFirst) {
        match_sequence_first(w, out);
      } else {
        match_sequence_last(w, out);
      }
      break;
    case PatternKind::kTriggerAny:
      match_trigger_any(w, out);
      break;
  }
  return out;
}

ComplexEvent Matcher::build_match(const WindowView& w,
                                  const std::vector<std::size_t>& event_indices,
                                  bool trigger_any) const {
  ComplexEvent ce;
  ce.window = w.id;
  ce.constituents.reserve(event_indices.size());
  for (std::size_t k = 0; k < event_indices.size(); ++k) {
    const std::size_t i = event_indices[k];
    Constituent c;
    c.element = pattern_.binding_element(k);
    c.position = w.pos(i);
    c.event = w.kept(i);
    ce.detection_ts = std::max(ce.detection_ts, c.event.ts);
    ce.constituents.push_back(std::move(c));
  }
  return ce;
}

// ---------------------------------------------------------------------------
// Sequence, first selection.
//
// Greedy earliest binding.  Under `consumed` the constituents of an emitted
// match are excluded and the scan restarts (this reproduces the paper's
// first+consumed example: {A1 A2 B3 B4} -> (A1,B3), (A2,B4)).  Under `zero`
// each additional match must *complete* strictly after the previous
// completion but may reuse earlier constituents.
// ---------------------------------------------------------------------------
// Negated variant: single-pass online matching with earliest bindings.  The
// partial prefix grows with the earliest matching instances; an event
// matching the negation of the *pending* gap invalidates the gap's left
// anchor (the element must re-bind after the poison).  Consumed matches do
// not revisit earlier events (online semantics).
void Matcher::match_sequence_first_negated(
    const WindowView& w, std::vector<ComplexEvent>& out) const {
  const std::size_t n = w.kept_count();
  const std::size_t k = pattern_.elements.size();

  bind_.clear();
  for (std::size_t i = 0; i < n; ++i) {
    const Event& ev = w.kept(i);
    const std::size_t p = bind_.size();
    // Extension is checked before the negation: an event that *binds* the
    // pending element sits at the gap's right edge, not inside it
    // (seq(A; !B; B) must match "A B").
    if (p < k && pattern_.elements[p].matches(ev)) {
      bind_.push_back(i);
      if (bind_.size() == k) {
        out.push_back(build_match(w, bind_, /*trigger_any=*/false));
        bind_.clear();  // consumed and zero alike: continue with fresh state
        if (out.size() >= max_matches_) return;
      }
      continue;
    }
    if (p > 0 && p < k && negation_for(p - 1) != nullptr &&
        negation_for(p - 1)->matches(ev)) {
      // Poisoned pending gap: the left anchor must re-bind after this event.
      bind_.pop_back();
    }
  }
}

void Matcher::match_sequence_first(const WindowView& w,
                                   std::vector<ComplexEvent>& out) const {
  if (!pattern_.negations.empty()) {
    match_sequence_first_negated(w, out);
    return;
  }
  const std::size_t n = w.kept_count();
  const std::size_t k = pattern_.elements.size();
  const bool exclude = track_consumed();
  if (exclude) consumed_.assign(n, 0);
  std::size_t last_completion_excl = 0;  // min index of the completing event

  while (out.size() < max_matches_) {
    bind_.clear();
    std::size_t from = 0;
    for (std::size_t j = 0; j < k; ++j) {
      const bool final_element = (j == k - 1);
      std::size_t i = from;
      if (final_element && consumption_ == ConsumptionPolicy::kZero) {
        i = std::max(i, last_completion_excl);
      }
      bool found = false;
      for (; i < n; ++i) {
        if (exclude && consumed_[i]) continue;
        if (pattern_.elements[j].matches(w.kept(i))) {
          bind_.push_back(i);
          from = i + 1;
          found = true;
          break;
        }
      }
      if (!found) return;  // no further match possible
    }
    out.push_back(build_match(w, bind_, /*trigger_any=*/false));
    if (consumption_ == ConsumptionPolicy::kConsumed) {
      if (exclude) {
        for (std::size_t i : bind_) consumed_[i] = 1;
      }
    } else {
      last_completion_excl = bind_.back() + 1;
    }
  }
}

// ---------------------------------------------------------------------------
// Sequence, last selection.
//
// Online partial-match replacement: partial[j] is the latest-known binding of
// elements 0..j-1.  When an event matches element j it *replaces* partial
// [j+1] (later instances win), and when it matches the final element the
// match completes with the latest prefix.  Reproduces the paper's example:
// {A1 A2 B3 B4}, last+consumed -> (A2,B3); last+zero -> (A2,B3), (A2,B4).
// ---------------------------------------------------------------------------
void Matcher::match_sequence_last(const WindowView& w,
                                  std::vector<ComplexEvent>& out) const {
  const std::size_t n = w.kept_count();
  const std::size_t k = pattern_.elements.size();
  const bool exclude = track_consumed();
  if (exclude) consumed_.assign(n, 0);

  // partial_[j]: indices binding elements 0..j-1 (partial_set_[j] == 0 means
  // none yet).  The inner vectors are reused across windows and resets.
  partial_.resize(k + 1);
  partial_set_.assign(k + 1, 0);
  partial_set_[0] = 1;  // the empty prefix always exists
  partial_[0].clear();

  auto reset_partials = [&] {
    for (std::size_t j = 1; j <= k; ++j) partial_set_[j] = 0;
  };

  // Prefix slots written by the current event's extensions; kills must skip
  // them (an event binding element j sits at the edge of gap j-1, not
  // inside it).
  extended_.assign(k + 1, 0);

  for (std::size_t i = 0; i < n; ++i) {
    if (exclude && consumed_[i]) continue;
    const Event& ev = w.kept(i);
    std::fill(extended_.begin(), extended_.end(), 0);
    // Descending element order so an event extends existing prefixes before
    // creating the shorter prefix it also matches (no self-reuse).
    for (std::size_t j = k; j-- > 0;) {
      if (!partial_set_[j]) continue;
      if (!pattern_.elements[j].matches(ev)) continue;
      if (j == k - 1) {
        bind_ = partial_[j];
        bind_.push_back(i);
        out.push_back(build_match(w, bind_, /*trigger_any=*/false));
        if (out.size() >= max_matches_) return;
        if (consumption_ == ConsumptionPolicy::kConsumed) {
          // Last selection never falls back to superseded (older) instances:
          // consuming a match clears the partial state instead of replaying
          // earlier events (this reproduces the paper's example, where
          // {A1 A2 B3 B4} under last+consumed yields only (A2, B3)).
          for (std::size_t b : bind_) consumed_[b] = 1;
          reset_partials();
          break;
        }
        // zero consumption: prefixes stay available for later completions.
      } else {
        // partial_[j+1] = partial_[j] + {i}; copy-assign reuses capacity.
        partial_[j + 1] = partial_[j];
        partial_[j + 1].push_back(i);
        partial_set_[j + 1] = 1;
        extended_[j + 1] = 1;
      }
    }
    // Negations: a forbidden event inside the pending gap of prefix j+1
    // kills that prefix (its last element must re-bind from later events).
    // Prefixes the same event just created are exempt: the event is the
    // gap's left anchor, not inside it.
    for (std::size_t j = 0; j + 1 < k; ++j) {
      if (partial_set_[j + 1] && !extended_[j + 1] &&
          negation_for(j) != nullptr && negation_for(j)->matches(ev)) {
        partial_set_[j + 1] = 0;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Trigger-any: seq(trigger; any(n, candidates)).
//
// first: earliest trigger, then the earliest n candidates after it (distinct
//        types if required).
// last:  earliest trigger, then the *latest* n candidates after it.
// Under consumed, constituents are excluded and the search repeats; under
// zero, the next match uses the next trigger occurrence.
// ---------------------------------------------------------------------------
void Matcher::match_trigger_any(const WindowView& w,
                                std::vector<ComplexEvent>& out) const {
  const std::size_t n = w.kept_count();
  const ElementSpec& trigger = pattern_.elements[0];
  const bool exclude = track_consumed();
  if (exclude) consumed_.assign(n, 0);
  std::size_t trigger_from = 0;

  while (out.size() < max_matches_) {
    // 1. Find the next usable trigger.
    std::size_t ti = trigger_from;
    for (; ti < n; ++ti) {
      if ((!exclude || !consumed_[ti]) && trigger.matches(w.kept(ti))) break;
    }
    if (ti >= n) return;

    // 2. Collect candidates after the trigger.
    chosen_.clear();
    type_used_.clear();
    auto try_take = [&](std::size_t i) {
      if (exclude && consumed_[i]) return;
      const Event& e = w.kept(i);
      if (!pattern_.candidate_matches(e)) return;
      if (pattern_.any_distinct_types) {
        if (e.type >= type_used_.size()) type_used_.resize(e.type + 1, 0);
        if (type_used_[e.type]) return;
        type_used_[e.type] = 1;
      }
      chosen_.push_back(i);
    };

    if (selection_ == SelectionPolicy::kFirst) {
      for (std::size_t i = ti + 1; i < n && chosen_.size() < pattern_.any_n;
           ++i) {
        try_take(i);
      }
    } else {
      for (std::size_t i = n;
           i-- > ti + 1 && chosen_.size() < pattern_.any_n;) {
        try_take(i);
      }
      std::reverse(chosen_.begin(), chosen_.end());
    }

    if (chosen_.size() < pattern_.any_n) {
      // This trigger cannot complete; try the next one.
      trigger_from = ti + 1;
      continue;
    }

    bind_.clear();
    bind_.reserve(1 + chosen_.size());
    bind_.push_back(ti);
    bind_.insert(bind_.end(), chosen_.begin(), chosen_.end());
    out.push_back(build_match(w, bind_, /*trigger_any=*/true));

    if (consumption_ == ConsumptionPolicy::kConsumed) {
      if (exclude) {
        for (std::size_t b : bind_) consumed_[b] = 1;
      }
      trigger_from = 0;  // earlier triggers may still be unconsumed
    } else {
      trigger_from = ti + 1;  // zero: advance to the next trigger occurrence
    }
  }
}

}  // namespace espice
