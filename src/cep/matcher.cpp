#include "cep/matcher.hpp"

#include <algorithm>
#include <optional>

#include "common/error.hpp"

namespace espice {

Matcher::Matcher(Pattern pattern, SelectionPolicy selection,
                 ConsumptionPolicy consumption, std::size_t max_matches_per_window)
    : pattern_(std::move(pattern)),
      selection_(selection),
      consumption_(consumption),
      max_matches_(max_matches_per_window) {
  pattern_.validate();
  ESPICE_REQUIRE(max_matches_ > 0, "max_matches_per_window must be positive");
}

std::vector<ComplexEvent> Matcher::match_window(const Window& w) const {
  std::vector<ComplexEvent> out;
  if (w.kept.empty()) return out;
  switch (pattern_.kind) {
    case PatternKind::kSequence:
      if (selection_ == SelectionPolicy::kFirst) {
        match_sequence_first(w, out);
      } else {
        match_sequence_last(w, out);
      }
      break;
    case PatternKind::kTriggerAny:
      match_trigger_any(w, out);
      break;
  }
  return out;
}

ComplexEvent Matcher::build_match(const Window& w,
                                  const std::vector<std::size_t>& event_indices,
                                  bool trigger_any) const {
  ComplexEvent ce;
  ce.window = w.id;
  ce.constituents.reserve(event_indices.size());
  for (std::size_t k = 0; k < event_indices.size(); ++k) {
    const std::size_t i = event_indices[k];
    Constituent c;
    // Any-candidates are an interchangeable set: give them all element id 1
    // so that match identity does not depend on enumeration order.
    c.element = trigger_any ? (k == 0 ? 0u : 1u) : static_cast<std::uint32_t>(k);
    c.position = w.kept_pos[i];
    c.event = w.kept[i];
    ce.detection_ts = std::max(ce.detection_ts, w.kept[i].ts);
    ce.constituents.push_back(std::move(c));
  }
  return ce;
}

// ---------------------------------------------------------------------------
// Sequence, first selection.
//
// Greedy earliest binding.  Under `consumed` the constituents of an emitted
// match are excluded and the scan restarts (this reproduces the paper's
// first+consumed example: {A1 A2 B3 B4} -> (A1,B3), (A2,B4)).  Under `zero`
// each additional match must *complete* strictly after the previous
// completion but may reuse earlier constituents.
// ---------------------------------------------------------------------------
// Negated variant: single-pass online matching with earliest bindings.  The
// partial prefix grows with the earliest matching instances; an event
// matching the negation of the *pending* gap invalidates the gap's left
// anchor (the element must re-bind after the poison).  Consumed matches do
// not revisit earlier events (online semantics).
void Matcher::match_sequence_first_negated(
    const Window& w, std::vector<ComplexEvent>& out) const {
  const auto& ev = w.kept;
  const std::size_t n = ev.size();
  const std::size_t k = pattern_.elements.size();

  // negation_for[g]: spec forbidden between elements g and g+1, or nullptr.
  std::vector<const ElementSpec*> negation_for(k, nullptr);
  for (const auto& neg : pattern_.negations) negation_for[neg.gap] = &neg.spec;

  std::vector<std::size_t> bind;
  bind.reserve(k);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t p = bind.size();
    // Extension is checked before the negation: an event that *binds* the
    // pending element sits at the gap's right edge, not inside it
    // (seq(A; !B; B) must match "A B").
    if (p < k && pattern_.elements[p].matches(ev[i])) {
      bind.push_back(i);
      if (bind.size() == k) {
        out.push_back(build_match(w, bind, /*trigger_any=*/false));
        bind.clear();  // consumed and zero alike: continue with fresh state
        if (out.size() >= max_matches_) return;
      }
      continue;
    }
    if (p > 0 && p < k && negation_for[p - 1] != nullptr &&
        negation_for[p - 1]->matches(ev[i])) {
      // Poisoned pending gap: the left anchor must re-bind after this event.
      bind.pop_back();
    }
  }
}

void Matcher::match_sequence_first(const Window& w,
                                   std::vector<ComplexEvent>& out) const {
  if (!pattern_.negations.empty()) {
    match_sequence_first_negated(w, out);
    return;
  }
  const auto& ev = w.kept;
  const std::size_t n = ev.size();
  const std::size_t k = pattern_.elements.size();
  std::vector<bool> consumed(n, false);
  std::size_t last_completion_excl = 0;  // min index of the completing event

  while (out.size() < max_matches_) {
    std::vector<std::size_t> bind;
    bind.reserve(k);
    std::size_t from = 0;
    for (std::size_t j = 0; j < k; ++j) {
      const bool final_element = (j == k - 1);
      std::size_t i = from;
      if (final_element && consumption_ == ConsumptionPolicy::kZero) {
        i = std::max(i, last_completion_excl);
      }
      bool found = false;
      for (; i < n; ++i) {
        if (consumed[i]) continue;
        if (pattern_.elements[j].matches(ev[i])) {
          bind.push_back(i);
          from = i + 1;
          found = true;
          break;
        }
      }
      if (!found) return;  // no further match possible
    }
    out.push_back(build_match(w, bind, /*trigger_any=*/false));
    if (consumption_ == ConsumptionPolicy::kConsumed) {
      for (std::size_t i : bind) consumed[i] = true;
    } else {
      last_completion_excl = bind.back() + 1;
    }
  }
}

// ---------------------------------------------------------------------------
// Sequence, last selection.
//
// Online partial-match replacement: partial[j] is the latest-known binding of
// elements 0..j-1.  When an event matches element j it *replaces* partial
// [j+1] (later instances win), and when it matches the final element the
// match completes with the latest prefix.  Reproduces the paper's example:
// {A1 A2 B3 B4}, last+consumed -> (A2,B3); last+zero -> (A2,B3), (A2,B4).
// ---------------------------------------------------------------------------
void Matcher::match_sequence_last(const Window& w,
                                  std::vector<ComplexEvent>& out) const {
  const auto& ev = w.kept;
  const std::size_t n = ev.size();
  const std::size_t k = pattern_.elements.size();
  std::vector<bool> consumed(n, false);

  std::vector<const ElementSpec*> negation_for(k, nullptr);
  for (const auto& neg : pattern_.negations) negation_for[neg.gap] = &neg.spec;

  // partial[j]: indices binding elements 0..j-1 (empty optional = none yet).
  std::vector<std::optional<std::vector<std::size_t>>> partial(k + 1);
  partial[0].emplace();  // the empty prefix always exists

  auto reset_partials = [&] {
    for (std::size_t j = 1; j <= k; ++j) partial[j].reset();
  };

  // Prefix slots written by the current event's extensions; kills must skip
  // them (an event binding element j sits at the edge of gap j-1, not
  // inside it).
  std::vector<bool> extended(k + 1, false);

  for (std::size_t i = 0; i < n; ++i) {
    if (consumed[i]) continue;
    std::fill(extended.begin(), extended.end(), false);
    // Descending element order so an event extends existing prefixes before
    // creating the shorter prefix it also matches (no self-reuse).
    for (std::size_t j = k; j-- > 0;) {
      if (!partial[j].has_value()) continue;
      if (!pattern_.elements[j].matches(ev[i])) continue;
      if (j == k - 1) {
        auto bind = *partial[j];
        bind.push_back(i);
        out.push_back(build_match(w, bind, /*trigger_any=*/false));
        if (out.size() >= max_matches_) return;
        if (consumption_ == ConsumptionPolicy::kConsumed) {
          // Last selection never falls back to superseded (older) instances:
          // consuming a match clears the partial state instead of replaying
          // earlier events (this reproduces the paper's example, where
          // {A1 A2 B3 B4} under last+consumed yields only (A2, B3)).
          for (std::size_t b : bind) consumed[b] = true;
          reset_partials();
          break;
        }
        // zero consumption: prefixes stay available for later completions.
      } else {
        auto next = *partial[j];
        next.push_back(i);
        partial[j + 1] = std::move(next);
        extended[j + 1] = true;
      }
    }
    // Negations: a forbidden event inside the pending gap of prefix j+1
    // kills that prefix (its last element must re-bind from later events).
    // Prefixes the same event just created are exempt: the event is the
    // gap's left anchor, not inside it.
    for (std::size_t j = 0; j + 1 < k; ++j) {
      if (partial[j + 1].has_value() && !extended[j + 1] &&
          negation_for[j] != nullptr && negation_for[j]->matches(ev[i])) {
        partial[j + 1].reset();
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Trigger-any: seq(trigger; any(n, candidates)).
//
// first: earliest trigger, then the earliest n candidates after it (distinct
//        types if required).
// last:  earliest trigger, then the *latest* n candidates after it.
// Under consumed, constituents are excluded and the search repeats; under
// zero, the next match uses the next trigger occurrence.
// ---------------------------------------------------------------------------
void Matcher::match_trigger_any(const Window& w,
                                std::vector<ComplexEvent>& out) const {
  const auto& ev = w.kept;
  const std::size_t n = ev.size();
  const ElementSpec& trigger = pattern_.elements[0];
  std::vector<bool> consumed(n, false);
  std::size_t trigger_from = 0;

  auto candidate_matches = [&](const Event& e) {
    if (!pattern_.any_candidates.matches(e.type)) return false;
    switch (pattern_.any_direction) {
      case DirectionFilter::kAny:
        return true;
      case DirectionFilter::kRising:
        return e.direction() > 0;
      case DirectionFilter::kFalling:
        return e.direction() < 0;
    }
    return false;
  };

  while (out.size() < max_matches_) {
    // 1. Find the next usable trigger.
    std::size_t ti = trigger_from;
    for (; ti < n; ++ti) {
      if (!consumed[ti] && trigger.matches(ev[ti])) break;
    }
    if (ti >= n) return;

    // 2. Collect candidates after the trigger.
    std::vector<std::size_t> chosen;
    std::vector<bool> type_used;
    auto try_take = [&](std::size_t i) {
      if (consumed[i] || !candidate_matches(ev[i])) return;
      if (pattern_.any_distinct_types) {
        if (ev[i].type >= type_used.size()) type_used.resize(ev[i].type + 1, false);
        if (type_used[ev[i].type]) return;
        type_used[ev[i].type] = true;
      }
      chosen.push_back(i);
    };

    if (selection_ == SelectionPolicy::kFirst) {
      for (std::size_t i = ti + 1; i < n && chosen.size() < pattern_.any_n; ++i) {
        try_take(i);
      }
    } else {
      for (std::size_t i = n; i-- > ti + 1 && chosen.size() < pattern_.any_n;) {
        try_take(i);
      }
      std::reverse(chosen.begin(), chosen.end());
    }

    if (chosen.size() < pattern_.any_n) {
      // This trigger cannot complete; try the next one.
      trigger_from = ti + 1;
      continue;
    }

    std::vector<std::size_t> bind;
    bind.reserve(1 + chosen.size());
    bind.push_back(ti);
    bind.insert(bind.end(), chosen.begin(), chosen.end());
    out.push_back(build_match(w, bind, /*trigger_any=*/true));

    if (consumption_ == ConsumptionPolicy::kConsumed) {
      for (std::size_t b : bind) consumed[b] = true;
      trigger_from = 0;  // earlier triggers may still be unconsumed
    } else {
      trigger_from = ti + 1;  // zero: advance to the next trigger occurrence
    }
  }
}

}  // namespace espice
