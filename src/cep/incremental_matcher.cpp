#include "cep/incremental_matcher.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "durability/serial.hpp"

namespace espice {

IncrementalMatcher::IncrementalMatcher(Pattern pattern,
                                       SelectionPolicy selection,
                                       ConsumptionPolicy consumption,
                                       std::size_t max_matches_per_window)
    : legacy_(std::move(pattern), selection, consumption,
              max_matches_per_window) {
  const Pattern& p = legacy_.pattern();
  // The run engine's sharing argument needs the window match to be a pure
  // function of the window's first anchor: first selection binds greedily
  // forward, a single match per window never consults consumption state,
  // and negated gaps would re-bind anchors (the fallback handles all of
  // those).
  eligible_ = max_matches_per_window == 1 &&
              selection == SelectionPolicy::kFirst && p.negations.empty();
  trigger_any_ = p.kind == PatternKind::kTriggerAny;
  width_ = p.match_width();
}

void IncrementalMatcher::bind(Run& r, const Event& e,
                              std::uint64_t offer_index) {
  r.idx.push_back(offer_index);
  r.ev.push_back(e);
  r.last_index = offer_index;
  r.max_ts = std::max(r.max_ts, e.ts);
}

void IncrementalMatcher::advance_runs(const Event& e,
                                      std::uint64_t offer_index) {
  const Pattern& p = legacy_.pattern();
  for (std::size_t i = active_head_; i < active_.size(); ++i) {
    Run& r = active_[i];
    if (!trigger_any_) {
      if (p.elements[r.idx.size()].matches(e)) bind(r, e, offer_index);
    } else {
      if (p.candidate_matches(e)) {
        bool fresh = true;
        if (p.any_distinct_types) {
          for (std::size_t c = 1; c < r.ev.size(); ++c) {
            if (r.ev[c].type == e.type) {
              fresh = false;
              break;
            }
          }
        }
        if (fresh) bind(r, e, offer_index);
      }
    }
  }
  // Completions form a prefix of the active queue: a later anchor binds
  // pointwise later-or-equal events, so it is never further along than an
  // earlier one.  Move the prefix; anchor order is preserved.
  while (active_head_ < active_.size() &&
         active_[active_head_].idx.size() == width_) {
    done_.push_back(std::move(active_[active_head_]));
    ++active_head_;
  }
  compact(active_, active_head_);
#ifndef NDEBUG
  for (std::size_t i = active_head_; i < active_.size(); ++i) {
    ESPICE_ASSERT(active_[i].idx.size() < width_,
                  "completed run stuck in the active queue");
  }
#endif
}

void IncrementalMatcher::start_run(const Event& e, std::uint64_t offer_index) {
  Run r;
  if (!pool_.empty()) {
    r = std::move(pool_.back());
    pool_.pop_back();
    r.idx.clear();
    r.ev.clear();
  }
  r.anchor = offer_index;
  r.max_ts = 0.0;  // build_match parity: detection_ts starts at 0.0
  bind(r, e, offer_index);
  if (width_ == 1) {
    // Single-element sequences complete at the anchor itself.
    done_.push_back(std::move(r));
  } else {
    active_.push_back(std::move(r));
  }
}

void IncrementalMatcher::on_partial_keep(std::uint64_t offer_index) {
  feed_seen_ = true;
  dirty_end_ = offer_index + 1;
  if (!eligible_) return;
  // Windows open now (open_index <= offer_index) are all dirty, and future
  // windows open strictly later, so runs anchored at or below this event
  // can never be consulted again.  retired_end_ advances to the same bound
  // as dirty_end_, so no clean window gains an extra fallback.
  if (offer_index + 1 > retired_end_) {
    retired_end_ = offer_index + 1;
    retire_through(offer_index);
  }
}

void IncrementalMatcher::on_kept(const Event& e, std::uint64_t offer_index) {
  if (!eligible_) return;
  feed_seen_ = true;
  // Existing runs first: an anchor event must not consume itself as its own
  // run's second binding (greedy bindings are strictly increasing).
  advance_runs(e, offer_index);
  const ElementSpec& head = legacy_.pattern().elements[0];
  if (head.matches(e)) {
    // Spawn a run only where some window maps to this anchor: a window
    // opened since the previous head match has this event as its first
    // in-window anchor (earlier windows resolve to an earlier anchor's
    // run, later windows to a later anchor).  This caps live runs at the
    // open-window count even when every event matches the head.
    if (window_seen_ &&
        (!head_match_seen_ || last_window_open_ > last_head_match_)) {
      start_run(e, offer_index);
    }
    last_head_match_ = offer_index;
    head_match_seen_ = true;
  }
}

void IncrementalMatcher::emit(const Run& r, const WindowView& w,
                              std::vector<ComplexEvent>& out) const {
  ComplexEvent ce;
  ce.window = w.id;
  ce.detection_ts = r.max_ts;
  ce.constituents.reserve(width_);
  const Pattern& p = legacy_.pattern();
  for (std::size_t k = 0; k < width_; ++k) {
    Constituent c;
    c.element = p.binding_element(k);
    ESPICE_ASSERT(r.idx[k] - w.open_index < (1ULL << 32),
                  "window position overflows 32 bits");
    c.position = static_cast<std::uint32_t>(r.idx[k] - w.open_index);
    c.event = r.ev[k];
    ce.constituents.push_back(std::move(c));
  }
  out.push_back(std::move(ce));
}

void IncrementalMatcher::pop_front(std::vector<Run>& runs, std::size_t& head) {
  Run& r = runs[head];
  r.idx.clear();
  r.ev.clear();
  pool_.push_back(std::move(r));
  ++head;
}

void IncrementalMatcher::compact(std::vector<Run>& runs, std::size_t& head) {
  // Erase the consumed prefix once it outgrows the live part (the open
  // window list's idiom): amortized O(1) moves per retired run.
  if (head == runs.size()) {
    runs.clear();
    head = 0;
  } else if (head > 32 && head > runs.size() - head) {
    runs.erase(runs.begin(), runs.begin() + static_cast<std::ptrdiff_t>(head));
    head = 0;
  }
}

void IncrementalMatcher::retire_through(std::uint64_t open_index) {
  // Later windows open (strictly) later, so their first in-window anchor is
  // strictly above open_index: runs anchored at or below it are dead.
  while (done_head_ < done_.size() && done_[done_head_].anchor <= open_index) {
    pop_front(done_, done_head_);
  }
  while (active_head_ < active_.size() &&
         active_[active_head_].anchor <= open_index) {
    pop_front(active_, active_head_);
  }
  compact(done_, done_head_);
  compact(active_, active_head_);
}

void IncrementalMatcher::finalize(const WindowView& w,
                                  std::vector<ComplexEvent>& out) {
  const std::uint64_t open = w.open_index;
  // feed_seen_ guards against a host that never wired the kept feed: with
  // no feed the run state is empty, and silently reporting zero matches
  // would mask the wiring bug -- the legacy scan of the view stays correct.
  const bool clean = eligible_ && w.store != nullptr &&
                     (feed_seen_ || w.kept_count() == 0) &&
                     open >= dirty_end_ && open >= retired_end_;
  if (!clean) {
    // Window scan: configurations outside the run engine, windows whose
    // kept set diverged from the uniform stream, direct-mode views,
    // feed-less hosts, and out-of-order closes (retired runs).
    auto matches = legacy_.match_window(w);
    for (auto& ce : matches) out.push_back(std::move(ce));
  } else if (w.arrivals > 0) {
    const std::uint64_t end = open + w.arrivals - 1;
    // The window's first in-window anchor: done_ anchors precede active_
    // anchors, so the first done run at or above `open` is the global
    // first.  An active first anchor means the greedy attempt has not
    // completed by the window's last event -- no match (first selection
    // makes exactly one attempt per window).
    std::size_t i = done_head_;
    while (i < done_.size() && done_[i].anchor < open) ++i;
    if (i < done_.size()) {
      const Run& r = done_[i];
      if (r.anchor <= end && r.last_index <= end) emit(r, w, out);
    }
  }
  if (open + 1 > retired_end_) {
    retired_end_ = open + 1;
    retire_through(open);
  }
}

void IncrementalMatcher::serialize(durability::SnapshotWriter& w) const {
  w.boolean(eligible_);
  const auto write_runs = [&](const std::vector<Run>& runs,
                              std::size_t head) {
    w.size(runs.size() - head);
    for (std::size_t i = head; i < runs.size(); ++i) {
      const Run& r = runs[i];
      w.u64(r.anchor);
      w.u64(r.last_index);
      w.f64(r.max_ts);
      w.vec_int(r.idx);
      w.size(r.ev.size());
      for (const Event& e : r.ev) w.event(e);
    }
  };
  write_runs(done_, done_head_);
  write_runs(active_, active_head_);
  w.boolean(feed_seen_);
  w.u64(last_window_open_);
  w.boolean(window_seen_);
  w.u64(last_head_match_);
  w.boolean(head_match_seen_);
  w.u64(dirty_end_);
  w.u64(retired_end_);
}

void IncrementalMatcher::restore(durability::SnapshotReader& r) {
  ESPICE_CHECK(r.boolean() == eligible_, ErrorCode::kCorruptSnapshot,
               "matcher snapshot eligibility disagrees with the pattern");
  const auto read_runs = [&](std::vector<Run>& runs, std::size_t& head) {
    runs.clear();
    head = 0;
    const std::size_t n = r.size();
    runs.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      Run run;
      run.anchor = r.u64();
      run.last_index = r.u64();
      run.max_ts = r.f64();
      run.idx = r.vec_int<std::uint64_t>();
      const std::size_t events = r.size();
      run.ev.reserve(events);
      for (std::size_t j = 0; j < events; ++j) run.ev.push_back(r.event());
      runs.push_back(std::move(run));
    }
  };
  read_runs(done_, done_head_);
  read_runs(active_, active_head_);
  feed_seen_ = r.boolean();
  last_window_open_ = r.u64();
  window_seen_ = r.boolean();
  last_head_match_ = r.u64();
  head_match_seen_ = r.boolean();
  dirty_end_ = r.u64();
  retired_end_ = r.u64();
}

}  // namespace espice
