// Window model and window lifecycle management.
//
// The paper assumes windows are formed *upstream* of the operator's input
// queue ("windows of primitive events are first pushed to the input queue"),
// and the load shedder then thins the contents of individual windows.  Two
// consequences drive this design:
//
//  1. The set of windows (their open/close boundaries) is identical with and
//     without shedding, which makes golden-vs-shed quality comparison exact.
//  2. An event's *position* in a window is its arrival index among all events
//     offered to that window, independent of which events were dropped.
//
// Supported strategies (all used by the paper's queries):
//  * span: time-based (ws seconds) or count-based (ws events),
//  * opening: predicate-opened (a new window per event matching an opener
//    element, Q1/Q2/Q3) or count-sliding (a new window every `slide` events,
//    Q4).
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "cep/event.hpp"
#include "cep/pattern.hpp"
#include "common/error.hpp"

namespace espice {

using WindowId = std::uint64_t;

enum class WindowSpan {
  kTime,       ///< closes span_seconds after opening
  kCount,      ///< closes after span_events offered events
  kPredicate,  ///< closes on an event matching `closer` (pattern-based
               ///< window, e.g. "possession start .. possession end");
               ///< span_events caps runaway windows
};
enum class WindowOpen { kPredicate, kCountSlide };

struct WindowSpec {
  WindowSpan span_kind = WindowSpan::kCount;
  double span_seconds = 0.0;    ///< for kTime
  std::size_t span_events = 0;  ///< for kCount; safety cap for kPredicate
  ElementSpec closer;           ///< for kPredicate span (closing event is
                                ///< included in the window)

  WindowOpen open_kind = WindowOpen::kCountSlide;
  ElementSpec opener;           ///< for kPredicate open
  std::size_t slide_events = 0; ///< for kCountSlide

  void validate() const {
    switch (span_kind) {
      case WindowSpan::kTime:
        ESPICE_REQUIRE(span_seconds > 0.0, "time window span must be positive");
        break;
      case WindowSpan::kCount:
        ESPICE_REQUIRE(span_events > 0, "count window span must be positive");
        break;
      case WindowSpan::kPredicate:
        ESPICE_REQUIRE(span_events > 0,
                       "predicate windows need a span_events safety cap");
        break;
    }
    if (open_kind == WindowOpen::kCountSlide) {
      ESPICE_REQUIRE(slide_events > 0, "slide must be positive");
    }
  }
};

/// A window instance.  `arrivals` counts every event offered to the window
/// (this defines positions); `kept` / `kept_pos` hold the events that
/// survived shedding, in arrival order, with their original positions.
struct Window {
  WindowId id = 0;
  double open_ts = 0.0;
  std::uint64_t open_seq = 0;
  std::size_t arrivals = 0;
  /// Set when a closer predicate matched (kPredicate spans): the window
  /// closes before the next event is routed.
  bool close_pending = false;
  std::vector<Event> kept;
  std::vector<std::uint32_t> kept_pos;

  /// Number of events offered (== the window size ws used for scaling).
  std::size_t size() const { return arrivals; }
};

/// Drives window opening, event-to-window routing and window closing.
///
/// Usage per event, in stream order:
///   auto memberships = mgr.offer(e);       // may open/close windows
///   for (auto& m : memberships)
///     if (!shedder.should_drop(...)) mgr.keep(m, e);
///   for (auto& w : mgr.drain_closed()) ... // match closed windows
class WindowManager {
 public:
  explicit WindowManager(WindowSpec spec);

  struct Membership {
    WindowId window;
    std::uint32_t position;  ///< arrival index of the event in that window
  };

  /// Routes `e`: closes expired windows, opens new ones as dictated by the
  /// spec, and returns the (window, position) pairs `e` belongs to.
  /// Membership entries stay valid until the next offer()/close_all() call.
  std::vector<Membership>& offer(const Event& e);

  /// Records `e` as kept (not shed) in the given window.
  void keep(const Membership& m, const Event& e);

  /// Windows closed since the last drain, in closing order.
  std::vector<Window> drain_closed();

  /// Force-closes all open windows (end of stream).
  void close_all();

  std::size_t open_count() const { return open_.size(); }
  std::uint64_t windows_opened() const { return next_id_; }

  /// Mean offered size of all closed windows so far (0 if none closed).
  /// Used to pick N, the utility table's position-space size.
  double avg_closed_window_size() const;

 private:
  void open_window(const Event& e);
  Window* find_open(WindowId id);

  WindowSpec spec_;
  std::deque<Window> open_;          // ordered by open time
  std::vector<Window> closed_;
  std::vector<Membership> scratch_;  // reused membership buffer
  WindowId next_id_ = 0;
  std::uint64_t events_seen_ = 0;
  std::uint64_t closed_count_ = 0;
  double closed_size_sum_ = 0.0;
};

}  // namespace espice
