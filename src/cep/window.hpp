// Window model and window lifecycle management.
//
// The paper assumes windows are formed *upstream* of the operator's input
// queue ("windows of primitive events are first pushed to the input queue"),
// and the load shedder then thins the contents of individual windows.  Two
// consequences drive this design:
//
//  1. The set of windows (their open/close boundaries) is identical with and
//     without shedding, which makes golden-vs-shed quality comparison exact.
//  2. An event's *position* in a window is its arrival index among all events
//     offered to that window, independent of which events were dropped.
//
// Supported strategies (all used by the paper's queries):
//  * span: time-based (ws seconds) or count-based (ws events),
//  * opening: predicate-opened (a new window per event matching an opener
//    element, Q1/Q2/Q3) or count-sliding (a new window every `slide` events,
//    Q4).
//
// Storage model (zero-copy): kept events live once in a shared EventStore
// ring buffer; a window holds only the slot ids and positions of its kept
// events.  With overlapping windows (slide << span) this keeps the payload
// footprint O(events) instead of O(events x overlap factor).  Consumers see
// closed windows as WindowView -- a non-owning (window, positions, slots)
// view into the store that stays valid until the next offer()/drain cycle.
// Window (with owned event copies) remains available for tests, oracles and
// any consumer that must retain contents longer; materialize() converts.
//
// Hot-path complexity per offered event:
//  * closing: amortized O(1) (FIFO pop-front; windows expire in open order.
//    Predicate-closed windows use a deferred compaction pass that runs only
//    when a closer actually fired, never a mid-deque erase),
//  * routing: positions are *computed* (offer index minus the window's open
//    index), so routing writes one membership record per overlapping window
//    and mutates no window state,
//  * keep(): O(1) -- the membership carries a direct handle to the open
//    window, and the event payload is appended to the store at most once no
//    matter how many windows keep it.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "cep/event.hpp"
#include "cep/event_store.hpp"
#include "cep/pattern.hpp"
#include "common/error.hpp"

namespace espice {

using WindowId = std::uint64_t;

/// Bit set of the queries that kept an event in a window (multi-query
/// execution: N queries share one WindowManager/EventStore and each keeps
/// its own subset of every window).  Bit q set = query q kept the event.
using QueryMask = std::uint64_t;

/// Hard cap on queries sharing one WindowManager (bits in QueryMask).
inline constexpr std::size_t kMaxQueriesPerWindowManager = 64;

/// Mask with the lowest `queries` bits set (all-queries mask).
inline QueryMask all_queries_mask(std::size_t queries) {
  ESPICE_ASSERT(queries >= 1 && queries <= kMaxQueriesPerWindowManager,
                "query count outside the mask range");
  return queries >= 64 ? ~QueryMask{0} : (QueryMask{1} << queries) - 1;
}

enum class WindowSpan {
  kTime,       ///< closes span_seconds after opening
  kCount,      ///< closes after span_events offered events
  kPredicate,  ///< closes on an event matching `closer` (pattern-based
               ///< window, e.g. "possession start .. possession end");
               ///< span_events caps runaway windows
};
enum class WindowOpen { kPredicate, kCountSlide };

struct WindowSpec {
  WindowSpan span_kind = WindowSpan::kCount;
  double span_seconds = 0.0;    ///< for kTime
  std::size_t span_events = 0;  ///< for kCount; safety cap for kPredicate
  ElementSpec closer;           ///< for kPredicate span (closing event is
                                ///< included in the window)

  WindowOpen open_kind = WindowOpen::kCountSlide;
  ElementSpec opener;           ///< for kPredicate open
  std::size_t slide_events = 0; ///< for kCountSlide

  void validate() const {
    switch (span_kind) {
      case WindowSpan::kTime:
        ESPICE_REQUIRE(span_seconds > 0.0, "time window span must be positive");
        break;
      case WindowSpan::kCount:
        ESPICE_REQUIRE(span_events > 0, "count window span must be positive");
        break;
      case WindowSpan::kPredicate:
        ESPICE_REQUIRE(span_events > 0,
                       "predicate windows need a span_events safety cap");
        break;
    }
    if (open_kind == WindowOpen::kCountSlide) {
      ESPICE_REQUIRE(slide_events > 0, "slide must be positive");
    }
  }
};

/// Owned snapshot of a window: event copies plus their positions, in arrival
/// order.  Used by tests, oracles and any consumer that must retain window
/// contents past the manager's drain cycle; the hot path uses WindowView.
struct Window;

/// One kept membership of a window: the event's store slot (as a 32-bit
/// offset from the window's begin slot -- windows cannot span more slots
/// than positions, which are 32-bit) and its arrival position.  8 bytes, so
/// keeping an event in a window is a single small push.
struct KeptEntry {
  std::uint32_t slot_offset;
  std::uint32_t position;
};

/// Non-owning view of a closed window's kept contents.  Either resolves
/// events through a shared EventStore (manager-produced views) or reads a
/// caller-owned contiguous array (views over a materialized Window).
/// Manager-produced views stay valid until the next offer()/drain_closed()/
/// close_all() call on the producing WindowManager.
struct WindowView {
  WindowId id = 0;
  double open_ts = 0.0;
  std::uint64_t open_seq = 0;
  /// Offer index of the opening event: the window contains exactly the
  /// events offered at [open_index, open_index + arrivals).  Stream-level
  /// consumers (the incremental matcher) anchor runs in this index space.
  std::uint64_t open_index = 0;
  /// Number of events offered (== the window size ws used for scaling).
  std::size_t arrivals = 0;

  const EventStore* store = nullptr;          ///< slot resolver (shared mode)
  EventStore::Slot begin_slot = 0;
  std::span<const KeptEntry> kept_entries;
  std::span<const Event> kept_direct;         ///< payloads (direct mode)
  std::span<const std::uint32_t> kept_positions;
  /// Per kept event, the queries that kept it (empty unless the producing
  /// manager tracks masks; parallel to kept_entries).
  std::span<const QueryMask> kept_masks;

  std::size_t size() const { return arrivals; }
  /// Events that survived shedding.
  std::size_t kept_count() const {
    return store != nullptr ? kept_entries.size() : kept_direct.size();
  }
  /// i-th kept event, in arrival order.
  const Event& kept(std::size_t i) const {
    return store != nullptr
               ? store->at(begin_slot + kept_entries[i].slot_offset)
               : kept_direct[i];
  }
  /// Arrival position of the i-th kept event.
  std::uint32_t pos(std::size_t i) const {
    return store != nullptr ? kept_entries[i].position : kept_positions[i];
  }
};

struct Window {
  WindowId id = 0;
  double open_ts = 0.0;
  std::uint64_t open_seq = 0;
  std::uint64_t open_index = 0;
  std::size_t arrivals = 0;
  std::vector<Event> kept;
  std::vector<std::uint32_t> kept_pos;

  /// Number of events offered (== the window size ws used for scaling).
  std::size_t size() const { return arrivals; }

  /// A direct-mode view over this window; valid while the window is alive
  /// and unmodified.
  WindowView view() const {
    WindowView v;
    v.id = id;
    v.open_ts = open_ts;
    v.open_seq = open_seq;
    v.open_index = open_index;
    v.arrivals = arrivals;
    v.kept_direct = kept;
    v.kept_positions = kept_pos;
    return v;
  }
};

/// True when `spec` can ever have two windows open at once.  Count-span /
/// count-slide specs with slide >= span are tumbling (or gapped): at most
/// one window is open, each event belongs to at most one window, and
/// stream-level run sharing has nothing to share -- hosts skip the kept
/// feed then and let finalize() take the per-window scan, which is cheaper
/// without overlap.
inline bool windows_can_overlap(const WindowSpec& spec) {
  return !(spec.span_kind == WindowSpan::kCount &&
           spec.open_kind == WindowOpen::kCountSlide &&
           spec.slide_events >= spec.span_events);
}

/// Structural equality of window-forming behavior (element names ignored):
/// two specs comparing equal open and close identical windows on any
/// stream.  The multi-query engine uses this to decide which queries can
/// share one WindowManager.
bool same_windowing(const WindowSpec& a, const WindowSpec& b);

/// Copies a view's contents into an owned Window.
Window materialize(const WindowView& v);

/// Sub-view of `full` containing only the kept events whose mask includes
/// `query`, in arrival order.  `scratch` backs the filtered entry list and
/// must stay alive (and unmodified) while the returned view is used; it is
/// reusable across calls.  Requires a mask-tracking, store-backed view.
///
/// This is the multi-query equivalence primitive: the filtered view is
/// bit-identical (same events, positions, arrival order, window metadata) to
/// the window the query would have seen running alone with its own shedder,
/// because window boundaries and positions depend only on *offered* events,
/// never on keep decisions.
WindowView filter_view_for_query(const WindowView& full, std::size_t query,
                                 std::vector<KeptEntry>& scratch);

/// Stream-level kept-event feed (see cep/incremental_matcher.hpp).  When a
/// feed is attached, the manager calls on_event_kept() once per offered
/// event that at least one query kept in at least one window -- in offer
/// order, and always before any window containing the event is drained.
/// `uniform` holds the queries that kept the event in EVERY window it was
/// offered to (their per-window kept sets agree with the uniform kept
/// stream); `partial` holds the queries that kept it in some windows but
/// not all (stream-level matcher state cannot serve their windows open at
/// this instant).  Single-query managers report an all-ones uniform mask.
/// Events kept by no query are never reported.
class KeptFeed {
 public:
  virtual ~KeptFeed() = default;
  virtual void on_event_kept(const Event& e, std::uint64_t offer_index,
                             QueryMask uniform, QueryMask partial) = 0;
  /// A window opened at `open_index` (its position-0 offer index).  Called
  /// in stream order relative to on_event_kept(): after the keeps of
  /// earlier events, before the keep of the opening event itself.  The
  /// incremental matcher uses this to anchor runs only where some window
  /// actually maps to them.
  virtual void on_window_open(std::uint64_t open_index) {
    (void)open_index;
  }
};

/// Drives window opening, event-to-window routing and window closing.
///
/// Usage per event, in stream order:
///   auto& memberships = mgr.offer(e);      // may open/close windows
///   for (auto& m : memberships)
///     if (!shedder.should_drop(...)) mgr.keep(m, e);
///   for (auto& w : mgr.drain_closed()) ... // match closed windows (views!)
class WindowManager {
 public:
  /// `track_masks`: record a per-kept-event QueryMask so N queries can share
  /// this manager (see keep(m, e, mask) and filter_view_for_query()).  The
  /// single-query hot path (false, default) stores no masks and is
  /// unchanged.
  explicit WindowManager(WindowSpec spec, bool track_masks = false);

  struct Membership {
    WindowId window;
    std::uint32_t position;  ///< arrival index of the event in that window
    /// Direct handle to the open window (its index in the open deque);
    /// makes keep() O(1).  Valid until the next offer()/close_all() call.
    std::uint32_t open_index;
  };

  /// Routes `e`: closes expired windows, opens new ones as dictated by the
  /// spec, and returns the (window, position) pairs `e` belongs to.
  /// Membership entries stay valid until the next offer()/close_all() call.
  std::vector<Membership>& offer(const Event& e);

  /// Records `e` as kept (not shed) in the given window.  The event payload
  /// is appended to the shared store at most once per offer() no matter how
  /// many windows keep it.
  void keep(const Membership& m, const Event& e) {
    keep(m, e, ~QueryMask{0});
  }

  /// Multi-query keep: records `e` as kept in the window for every query
  /// whose bit is set in `mask` (the caller ORs its queries' keep
  /// decisions; an event every query sheds is simply never kept -- a
  /// physical drop).  `mask` must be nonzero.  Requires track_masks unless
  /// the mask is all-ones (the single-query path above).
  void keep(const Membership& m, const Event& e, QueryMask mask);

  /// Batched all-keep path: offers every event of `block` in stream order
  /// and keeps each of its memberships with `mask` -- exactly equivalent to
  /// `for (e : block) { for (m : offer(e)) keep(m, e, mask); }`, bit for
  /// bit, but with the window-boundary checks hoisted out of the inner
  /// loop.  Runs of events between two boundaries (a window opening or
  /// closing) see a FIXED set of open windows, so the run's payloads land
  /// in the store via one bulk append and each window's kept list grows by
  /// one contiguous (slot, position) span; only the boundary events take
  /// the scalar path.  For count-span/count-slide specs boundaries are
  /// index arithmetic; for predicate openers/closers the block is first
  /// classified against the opener/closer element (classify_block, one
  /// bitmap per block) and boundaries are the match bits -- so
  /// predicate-windowed streams batch exactly like count-slide ones
  /// between pattern events.  Time spans close on timestamps, not offer
  /// indices, and stay per-event scalar.  Returns the number of
  /// memberships offered (all of them kept).
  ///
  /// Shedding callers cannot use this (decisions are per membership); the
  /// no-shedder engine pipeline, and the sizing/training phases of the
  /// adaptive operators, are all-keep and batch through here.
  std::uint64_t offer_keep_all_block(std::span<const Event> block,
                                     QueryMask mask = ~QueryMask{0});

  /// Upper bound on how many upcoming events can be offered before -- and
  /// including -- the next event whose offer() can close a window: offering
  /// the next `close_free_horizon() - 1` events closes nothing.  Exact for
  /// count-span specs (window closings are index-arithmetic there); a
  /// conservative 1 for time/predicate spans, where any event may close.
  /// Batched operator hosts chunk blocks with this so phase transitions
  /// (which trigger on window closings) happen at the same event as in
  /// per-event execution.
  std::uint64_t close_free_horizon() const;

  /// Attaches the stream-level kept-event feed (nullptr detaches).  Must be
  /// attached before the first offer() and outlive the manager's use; the
  /// feed then observes every kept event exactly once, including through
  /// the offer_keep_all_block() bulk path.
  void set_kept_feed(KeptFeed* feed) {
    ESPICE_REQUIRE(events_seen_ == 0,
                   "kept feed must attach before the first offer()");
    feed_ = feed;
  }

  /// Event-time watermark: closes every open time-span window whose
  /// span ended at or before event-time `ts`, without offering an
  /// event.  Bit-identical to the close the next offer() would have
  /// performed (arrivals count only offered events, and any event the
  /// watermark precedes would have closed the same windows first), so
  /// watermark-driven close only ADDS earlier close points -- it never
  /// changes window contents.  No-op for count/predicate spans, whose
  /// boundaries are offer-index-based and close in offer() as before.
  /// Call with a monotone ts (the engine's reorder stage guarantees
  /// this).
  void advance_time_watermark(double ts);

  /// Views of the windows closed since the last drain, in closing order.
  /// Views (and the store slots they reference) stay valid until the next
  /// offer()/drain_closed()/close_all() call; materialize() any window that
  /// must outlive that.
  const std::vector<WindowView>& drain_closed();

  /// Force-closes all open windows (end of stream).
  void close_all();

  std::size_t open_count() const { return open_.size() - open_head_; }
  std::uint64_t windows_opened() const { return next_id_; }

  /// Mean offered size of all closed windows so far (0 if none closed).
  /// Used to pick N, the utility table's position-space size.
  double avg_closed_window_size() const;

  const EventStore& store() const { return store_; }

  /// Live kept-event payload bytes (shared store; counted once per event
  /// regardless of the overlap factor).
  std::size_t resident_payload_bytes() const {
    return store_.size() * sizeof(Event);
  }
  /// Per-window index bytes (slot + position lists of open and undrained
  /// windows).  This is the only per-membership cost that remains.
  std::size_t resident_index_bytes() const;

  /// Snapshot (durability layer): open and closed-but-undrained windows,
  /// the shared store's live span, the pending feed state and every
  /// counter.  Non-const because consumed drained views are recycled and
  /// the store trimmed first (unobservable compaction).  The restoring
  /// manager must be constructed with the same spec and track_masks, and
  /// its kept feed (if any) must be attached before restore().
  void serialize(durability::SnapshotWriter& w);
  void restore(durability::SnapshotReader& r);

 private:
  /// An open (or closed-but-undrained) window: index spans into the shared
  /// store plus the (slot, position) list of its kept events.
  struct WindowRecord {
    WindowId id = 0;
    double open_ts = 0.0;
    std::uint64_t open_seq = 0;
    std::uint64_t open_index = 0;    ///< offer index of the opening event
    EventStore::Slot begin_slot = 0; ///< store slots >= this belong to it
    bool close_pending = false;
    std::size_t arrivals = 0;        ///< filled at close
    std::vector<KeptEntry> kept;
    std::vector<QueryMask> kept_masks;  ///< parallel to kept (mask mode only)
  };

  void open_window(const Event& e);
  void flush_feed();
  void close_record(WindowRecord&& w);
  void close_expired_front();
  void compact_close_predicate(const Event& e);
  void recycle_drained();
  void trim_store();
  bool record_expired(const WindowRecord& w, const Event& e) const;
  WindowView view_of(const WindowRecord& r) const;

  WindowSpec spec_;
  bool track_masks_ = false;
  EventStore store_;
  // Open windows in open order, live in [open_head_, open_.size()).  A
  // vector with a head cursor beats a deque here: routing iterates
  // contiguous memory and keep() indexes with one add; the head prefix is
  // erased (amortized O(1) per close) once it outgrows the live part.
  std::vector<WindowRecord> open_;
  std::size_t open_head_ = 0;
  std::vector<WindowRecord> closed_;   // closed, not yet drained
  std::vector<WindowRecord> drained_;  // handed out by the last drain
  std::vector<WindowView> views_;      // drain_closed() return buffer
  std::vector<Membership> scratch_;    // reused membership buffer
  // Per-block opener/closer classification bitmaps (offer_keep_all_block
  // scratch; see classify_block in pattern.hpp).
  std::vector<std::uint64_t> opener_bits_;
  std::vector<std::uint64_t> closer_bits_;
  // Recycled kept lists so open_window() stops allocating at steady state.
  std::vector<std::vector<KeptEntry>> kept_pool_;
  std::vector<std::vector<QueryMask>> mask_pool_;
  WindowId next_id_ = 0;
  // Kept-event feed: per-event keep masks accumulate here and flush as one
  // on_event_kept() call at the next offer() (or close_all()), once the
  // event's full membership fate is known.
  KeptFeed* feed_ = nullptr;
  Event pending_event_{};
  std::uint64_t pending_index_ = 0;
  std::size_t pending_mcount_ = 0;
  std::size_t pending_keeps_ = 0;
  QueryMask pending_and_ = 0;
  QueryMask pending_or_ = 0;
  bool pending_valid_ = false;
  std::uint64_t events_seen_ = 0;
  bool any_close_pending_ = false;
  bool event_in_store_ = false;        ///< current event already appended?
  EventStore::Slot current_slot_ = 0;
  std::uint64_t closed_count_ = 0;
  double closed_size_sum_ = 0.0;
};

}  // namespace espice
