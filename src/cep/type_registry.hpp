// Mapping between human-readable event-type names and dense EventTypeIds.
//
// The shedding data structures (utility table, position shares) are indexed
// by EventTypeId, so ids must be dense and known up front.  The registry is
// append-only; looking up a name that was never registered is a programming
// error in this codebase (datasets create their full type universe eagerly).
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "cep/event.hpp"

namespace espice {

class TypeRegistry {
 public:
  /// Registers `name` if new and returns its id; returns the existing id
  /// otherwise.  Ids are assigned contiguously starting at 0.
  EventTypeId intern(std::string_view name);

  /// Id for an already-registered name; asserts if unknown.
  EventTypeId id_of(std::string_view name) const;

  /// True if `name` has been registered.
  bool contains(std::string_view name) const;

  /// Name for a registered id; asserts if out of range.
  const std::string& name_of(EventTypeId id) const;

  /// Number of registered types (== M, the utility table's row count).
  std::size_t size() const { return names_.size(); }

 private:
  std::unordered_map<std::string, EventTypeId> ids_;
  std::vector<std::string> names_;
};

}  // namespace espice
