// Pattern / query model (a pragmatic subset of Tesla / SASE / Snoop).
//
// The reproduction needs the operator classes the paper evaluates:
//   * sequence:                  seq(E1; E2; ...; Ek)           (Q3)
//   * sequence with repetition:  seq(E1; E1; E2; ...)           (Q4)
//   * sequence with any:         seq(trigger; any(n, C1..Cm))   (Q1, Q2)
// all with skip-till-next/any-match semantics, the *first* / *last* selection
// policies and the *consumed* / *zero* consumption policies.
//
// Elements are described by introspectable data (type sets + direction
// filters) rather than opaque callables.  This serves two purposes: matching
// stays deterministic and cheap, and the He-et-al.-style baseline shedder can
// derive per-type utilities from the pattern structure, exactly as the
// paper's BL does.  The eSPICE shedder itself never looks at the pattern.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "cep/event.hpp"
#include "common/error.hpp"

namespace espice {

/// Which event instances are chosen when several combinations match.
enum class SelectionPolicy { kFirst, kLast };

/// Whether events used in a detected complex event may be reused by
/// subsequent matches in the same window.
enum class ConsumptionPolicy { kConsumed, kZero };

/// A set of event types, stored as a bitmap over the dense id space.
/// An *empty* TypeSet means "any type" (used by Q2's `any stock symbol`).
///
/// The bitmap is flat uint64_t words, not std::vector<bool>: membership is
/// one shift-and-mask on the matcher's hot path instead of the bit-reference
/// proxy reads a packed bool vector does.
class TypeSet {
 public:
  TypeSet() = default;
  TypeSet(std::initializer_list<EventTypeId> ids) {
    for (EventTypeId id : ids) insert(id);
  }

  void insert(EventTypeId id) {
    const std::size_t word = id >> 6;
    if (word >= words_.size()) words_.resize(word + 1, 0);
    const std::uint64_t bit = std::uint64_t{1} << (id & 63);
    if ((words_[word] & bit) == 0) {
      words_[word] |= bit;
      ++count_;
    }
  }

  /// True if the set matches `id`.  The empty set matches everything.
  bool matches(EventTypeId id) const { return count_ == 0 || contains(id); }

  /// True if `id` is explicitly a member (empty set contains nothing).
  bool contains(EventTypeId id) const {
    const std::size_t word = id >> 6;
    return word < words_.size() && ((words_[word] >> (id & 63)) & 1) != 0;
  }

  bool is_any() const { return count_ == 0; }
  std::size_t explicit_count() const { return count_; }

  /// Explicit members in ascending id order (empty for the "any" set).
  std::vector<EventTypeId> members() const {
    std::vector<EventTypeId> out;
    out.reserve(count_);
    for (std::size_t w = 0; w < words_.size(); ++w) {
      std::uint64_t word = words_[w];
      while (word != 0) {
        const int bit = std::countr_zero(word);
        out.push_back(static_cast<EventTypeId>((w << 6) + bit));
        word &= word - 1;
      }
    }
    return out;
  }

 private:
  std::vector<std::uint64_t> words_;  ///< one bit per type id, 64 per word
  std::size_t count_ = 0;
};

/// Direction filter applied to Event::direction().
enum class DirectionFilter : std::int8_t {
  kAny = 0,
  kRising = +1,   // value > 0
  kFalling = -1,  // value < 0
};

inline bool direction_passes(DirectionFilter filter, const Event& e) {
  switch (filter) {
    case DirectionFilter::kAny:
      return true;
    case DirectionFilter::kRising:
      return e.direction() > 0;
    case DirectionFilter::kFalling:
      return e.direction() < 0;
  }
  return false;  // unreachable
}

/// One position in a pattern: "an event whose type is in `types` and whose
/// direction passes `direction`".
struct ElementSpec {
  std::string name;  ///< for diagnostics / reports only
  TypeSet types;     ///< empty = any type
  DirectionFilter direction = DirectionFilter::kAny;

  bool matches(const Event& e) const {
    return types.matches(e.type) && direction_passes(direction, e);
  }
};

/// Batched type-mask classification: sets bit j of `match_bits` (word
/// j / 64, bit j % 64 -- the keep-bitmap layout) when `spec` matches
/// events[j].  Bit-identical to calling spec.matches() once per event;
/// the empty-set ("any type") test is hoisted out of the loop and the
/// per-event work is a branch-free mask-word probe over the contiguous
/// block, so block consumers (the window router) classify a whole block
/// into a bitmap and scan runs between matches instead of re-testing
/// every event.  The caller provides ceil(n / 64) words, not zeroed.
inline void classify_block(const ElementSpec& spec, const Event* events,
                           std::size_t n, std::uint64_t* match_bits) {
  const bool any_type = spec.types.is_any();
  const DirectionFilter dir = spec.direction;
  std::uint64_t word = 0;
  for (std::size_t j = 0; j < n; ++j) {
    if (j != 0 && j % 64 == 0) {
      match_bits[j / 64 - 1] = word;
      word = 0;
    }
    const Event& e = events[j];
    const bool m = (any_type || spec.types.contains(e.type)) &&
                   direction_passes(dir, e);
    word |= static_cast<std::uint64_t>(m) << (j % 64);
  }
  if (n > 0) match_bits[(n - 1) / 64] = word;
}

/// Pattern kinds supported by the matcher.
enum class PatternKind {
  kSequence,    ///< seq(e0; e1; ...; ek-1), elements may repeat (Q3, Q4)
  kTriggerAny,  ///< seq(trigger; any(n, candidates)) (Q1, Q2)
};

/// Negation constraint on a sequence: no event matching `spec` may occur
/// between the bindings of elements `gap` and `gap + 1`
/// (Snoop/SASE-style "seq(A; !C; B)").
struct SequenceNegation {
  std::size_t gap = 0;
  ElementSpec spec;
};

/// A complete pattern.  For kSequence, `elements` holds the ordered element
/// list.  For kTriggerAny, `elements[0]` is the trigger and `any_candidates` /
/// `any_n` describe the any-operator.
struct Pattern {
  PatternKind kind = PatternKind::kSequence;
  std::vector<ElementSpec> elements;

  /// Negated gaps (kSequence only).  Negations on *adjacent* gaps are
  /// rejected: the online matcher re-binds the left anchor of a poisoned
  /// gap, which is exact only when the preceding gap carries no negation.
  std::vector<SequenceNegation> negations;

  // --- kTriggerAny only ---
  TypeSet any_candidates;        ///< candidate set of the any operator
  DirectionFilter any_direction = DirectionFilter::kAny;
  std::size_t any_n = 0;         ///< how many candidate events are required
  /// Require the `any_n` chosen candidates to have pairwise distinct types
  /// (e.g. n *different* defenders / stock symbols).
  bool any_distinct_types = true;

  /// Number of pattern positions a full match binds.
  std::size_t match_width() const {
    return kind == PatternKind::kSequence ? elements.size() : 1 + any_n;
  }

  /// Whether `e` is an any-operator candidate (kTriggerAny only).  Shared
  /// by the legacy and the incremental matcher so candidate semantics have
  /// exactly one definition.
  bool candidate_matches(const Event& e) const {
    return any_candidates.matches(e.type) && direction_passes(any_direction, e);
  }

  /// Pattern element id the k-th binding of a full match reports.  For
  /// trigger-any the trigger is element 0 and every any-candidate is
  /// element 1 (candidates are an interchangeable set, so match identity
  /// must not depend on enumeration order).
  std::uint32_t binding_element(std::size_t k) const {
    if (kind == PatternKind::kTriggerAny) return k == 0 ? 0u : 1u;
    return static_cast<std::uint32_t>(k);
  }

  void validate() const {
    ESPICE_REQUIRE(!elements.empty(), "pattern needs at least one element");
    if (!negations.empty()) {
      ESPICE_REQUIRE(kind == PatternKind::kSequence,
                     "negations are only supported on sequences");
      std::vector<bool> negated(elements.size(), false);
      for (const auto& n : negations) {
        ESPICE_REQUIRE(n.gap + 1 < elements.size(),
                       "negation gap index out of range");
        negated[n.gap] = true;
      }
      for (std::size_t g = 1; g < negated.size(); ++g) {
        ESPICE_REQUIRE(!(negated[g] && negated[g - 1]),
                       "negations on adjacent gaps are not supported");
      }
    }
    if (kind == PatternKind::kTriggerAny) {
      ESPICE_REQUIRE(
          elements.size() == 1,
          "trigger-any pattern must have exactly one trigger element");
      ESPICE_REQUIRE(any_n > 0, "any(n, ...) needs n > 0");
      ESPICE_REQUIRE(
          any_candidates.is_any() || any_candidates.explicit_count() >= any_n ||
              !any_distinct_types,
          "any(n, ...) with distinct types needs at least n candidate types");
    }
  }
};

// ---------------------------------------------------------------------------
// Convenience builders (used by tests, examples and the query factories).
// ---------------------------------------------------------------------------

inline ElementSpec element(std::string name, TypeSet types,
                           DirectionFilter dir = DirectionFilter::kAny) {
  return ElementSpec{std::move(name), std::move(types), dir};
}

/// seq(e0; e1; ...; ek-1)
inline Pattern make_sequence(std::vector<ElementSpec> elements) {
  Pattern p;
  p.kind = PatternKind::kSequence;
  p.elements = std::move(elements);
  p.validate();
  return p;
}

/// seq(e0; ...; ek-1) with negated gaps, e.g. seq(A; !C; B) ==
/// make_sequence_with_negations({A, B}, {{0, C}}).
inline Pattern make_sequence_with_negations(
    std::vector<ElementSpec> elements,
    std::vector<SequenceNegation> negations) {
  Pattern p;
  p.kind = PatternKind::kSequence;
  p.elements = std::move(elements);
  p.negations = std::move(negations);
  p.validate();
  return p;
}

/// seq(trigger; any(n, candidates))
inline Pattern make_trigger_any(
    ElementSpec trigger, TypeSet candidates, std::size_t n,
    DirectionFilter candidate_dir = DirectionFilter::kAny,
    bool distinct_types = true) {
  Pattern p;
  p.kind = PatternKind::kTriggerAny;
  p.elements.push_back(std::move(trigger));
  p.any_candidates = std::move(candidates);
  p.any_direction = candidate_dir;
  p.any_n = n;
  p.any_distinct_types = distinct_types;
  p.validate();
  return p;
}

}  // namespace espice
