// Result-quality metrics: false negatives and false positives
// (paper Section 2.1).
//
// A complex event's identity is the window it was detected in plus the set of
// (element, event-sequence-number) bindings.  Because shedding never changes
// window boundaries (windows are formed upstream of the shedder), golden and
// shed runs produce directly comparable identities:
//   false negative: in the golden set but not the shed set,
//   false positive: in the shed set but not the golden set.
// Percentages are relative to the golden match count, as in the paper's
// "% false negatives / positives" plots.
#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "cep/matcher.hpp"

namespace espice {

/// Canonical, order-independent identity of a complex event.
/// Two matches are equal iff they were detected in the same window and bound
/// exactly the same primitive events to the same pattern elements.
std::uint64_t match_identity(const ComplexEvent& ce);

struct QualityReport {
  std::size_t golden = 0;
  std::size_t detected = 0;
  std::size_t false_negatives = 0;
  std::size_t false_positives = 0;

  double fn_percent() const {
    return golden == 0 ? 0.0
                       : 100.0 * static_cast<double>(false_negatives) /
                             static_cast<double>(golden);
  }
  double fp_percent() const {
    return golden == 0 ? 0.0
                       : 100.0 * static_cast<double>(false_positives) /
                             static_cast<double>(golden);
  }
};

/// Compares a shed run against the golden (unshedded) run.
QualityReport compare_quality(const std::vector<ComplexEvent>& golden,
                              const std::vector<ComplexEvent>& detected);

}  // namespace espice
