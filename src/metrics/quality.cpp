#include "metrics/quality.hpp"

#include <algorithm>

namespace espice {

namespace {

// 64-bit mix (SplitMix64 finalizer) for order-independent set hashing.
std::uint64_t mix(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

std::uint64_t match_identity(const ComplexEvent& ce) {
  // XOR of mixed per-constituent hashes is order independent, which is what
  // we need: any-operator candidates are an unordered set.  The window id is
  // folded in so identical bindings in different windows stay distinct.
  std::uint64_t h = mix(0x9e3779b97f4a7c15ULL ^ ce.window);
  for (const Constituent& c : ce.constituents) {
    h ^= mix((static_cast<std::uint64_t>(c.element) << 48) ^ c.event.seq);
  }
  return h;
}

QualityReport compare_quality(const std::vector<ComplexEvent>& golden,
                              const std::vector<ComplexEvent>& detected) {
  QualityReport report;
  report.golden = golden.size();
  report.detected = detected.size();

  std::unordered_set<std::uint64_t> golden_ids;
  golden_ids.reserve(golden.size() * 2);
  for (const auto& ce : golden) golden_ids.insert(match_identity(ce));

  std::unordered_set<std::uint64_t> detected_ids;
  detected_ids.reserve(detected.size() * 2);
  for (const auto& ce : detected) detected_ids.insert(match_identity(ce));

  for (std::uint64_t id : golden_ids) {
    if (detected_ids.find(id) == detected_ids.end()) ++report.false_negatives;
  }
  for (std::uint64_t id : detected_ids) {
    if (golden_ids.find(id) == golden_ids.end()) ++report.false_positives;
  }
  return report;
}

}  // namespace espice
