#include "metrics/latency.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace espice {

LatencySummary summarize_latency(const std::vector<LatencySample>& samples,
                                 double bound, double bucket_seconds) {
  ESPICE_REQUIRE(bucket_seconds > 0.0, "bucket size must be positive");
  LatencySummary summary;
  summary.events = samples.size();
  if (samples.empty()) return summary;

  PercentileTracker tracker;
  RunningStats overall;

  double horizon = 0.0;
  for (const auto& s : samples) horizon = std::max(horizon, s.completion_ts);
  const auto n_buckets =
      static_cast<std::size_t>(std::floor(horizon / bucket_seconds)) + 1;
  std::vector<RunningStats> per_bucket(n_buckets);

  for (const auto& s : samples) {
    overall.observe(s.latency);
    tracker.observe(s.latency);
    if (s.latency > bound) ++summary.violations;
    const auto b = static_cast<std::size_t>(s.completion_ts / bucket_seconds);
    per_bucket[std::min(b, n_buckets - 1)].observe(s.latency);
  }

  summary.mean = overall.mean();
  summary.max = overall.max();
  summary.p99 = tracker.percentile(0.99);
  summary.buckets.reserve(n_buckets);
  for (std::size_t b = 0; b < n_buckets; ++b) {
    if (per_bucket[b].count() == 0) continue;
    LatencyBucket bucket;
    bucket.start_ts = static_cast<double>(b) * bucket_seconds;
    bucket.mean = per_bucket[b].mean();
    bucket.max = per_bucket[b].max();
    bucket.events = per_bucket[b].count();
    summary.buckets.push_back(bucket);
  }
  return summary;
}

}  // namespace espice
