#include "metrics/latency.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/error.hpp"

namespace espice {

namespace {

/// Bucket index of a completion timestamp.  Clamps non-finite / negative
/// timestamps to bucket 0 -- casting a negative double to an unsigned
/// integer is undefined behavior, so the clamp happens in floating point
/// BEFORE the cast -- and saturates indices beyond the uint64 range.
std::uint64_t bucket_of(double completion_ts, double bucket_seconds) {
  if (!(completion_ts > 0.0)) return 0;  // negatives and NaN land in bucket 0
  const double ratio = completion_ts / bucket_seconds;
  // 2^63 is exactly representable; anything at or above it saturates.
  constexpr double kSaturate = 9223372036854775808.0;
  if (ratio >= kSaturate) return std::uint64_t{1} << 63;
  return static_cast<std::uint64_t>(ratio);
}

}  // namespace

LatencySummary summarize_latency(const std::vector<LatencySample>& samples,
                                 double bound, double bucket_seconds) {
  ESPICE_REQUIRE(bucket_seconds > 0.0, "bucket size must be positive");
  LatencySummary summary;
  summary.events = samples.size();
  if (samples.empty()) return summary;

  PercentileTracker tracker;
  RunningStats overall;

  // Sparse buckets: keyed by index, ordered, O(occupied) space.  A trace
  // whose completion timestamps span a huge horizon (sparse simulator
  // output, epoch-style timestamps) must not allocate horizon/bucket
  // RunningStats slots.
  std::map<std::uint64_t, RunningStats> per_bucket;

  for (const auto& s : samples) {
    overall.observe(s.latency);
    tracker.observe(s.latency);
    if (s.latency > bound) ++summary.violations;
    per_bucket[bucket_of(s.completion_ts, bucket_seconds)].observe(s.latency);
  }

  summary.mean = overall.mean();
  summary.max = overall.max();
  summary.p50 = tracker.percentile(0.50);
  summary.p99 = tracker.percentile(0.99);
  summary.p999 = tracker.percentile(0.999);
  summary.buckets.reserve(per_bucket.size());
  for (const auto& [b, stats] : per_bucket) {
    LatencyBucket bucket;
    bucket.start_ts = static_cast<double>(b) * bucket_seconds;
    bucket.mean = stats.mean();
    bucket.max = stats.max();
    bucket.events = stats.count();
    summary.buckets.push_back(bucket);
  }
  return summary;
}

}  // namespace espice
