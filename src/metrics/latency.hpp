// Latency time-series analysis for the latency-bound experiments (Fig. 7).
//
// Consumes the per-event LatencySample stream produced by the simulator and
// produces per-second buckets (mean/max latency) plus bound-violation
// statistics.
#pragma once

#include <cstdint>
#include <vector>

#include "common/stats.hpp"
#include "sim/operator_sim.hpp"

namespace espice {

struct LatencyBucket {
  double start_ts = 0.0;  ///< bucket start (virtual seconds)
  double mean = 0.0;
  double max = 0.0;
  std::size_t events = 0;
};

struct LatencySummary {
  std::vector<LatencyBucket> buckets;
  double mean = 0.0;
  double p50 = 0.0;
  double p99 = 0.0;
  double p999 = 0.0;
  double max = 0.0;
  std::size_t violations = 0;  ///< events with latency > bound
  std::size_t events = 0;

  double violation_percent() const {
    return events == 0 ? 0.0
                       : 100.0 * static_cast<double>(violations) /
                             static_cast<double>(events);
  }
};

/// Buckets `samples` by completion time into `bucket_seconds` slices and
/// summarizes against the latency bound.  Non-finite or negative completion
/// timestamps are clamped into the first bucket (a float-to-unsigned cast
/// of a negative value is UB, and a simulator restart can legitimately
/// emit ts <= 0); bucketing is sparse, so a trace with a handful of
/// samples at a huge horizon costs O(samples), not O(horizon / bucket).
LatencySummary summarize_latency(const std::vector<LatencySample>& samples,
                                 double bound, double bucket_seconds = 1.0);

}  // namespace espice
