// Fixed-bucket log2-linear latency histogram (HDR-histogram style).
//
// The shard pipelines need a latency recorder cheap enough to sit on the
// data path: record() is a handful of ALU ops and one counter increment --
// no allocation, no sorting, no floating point.  Values are nanoseconds in
// a 64-bit range bucketed log2-linearly: 64 linear buckets per power-of-two
// octave, so any recorded value is off by at most 1/64 (~1.6%) of itself.
// That is plenty for p50/p99/p999 reporting while the whole histogram stays
// a flat ~30 KB array that merges across shards with one vector add.
//
// Exact count/sum/min/max ride along so mean() and max() are not subject
// to bucketing error; only the quantiles are approximate (quantile()
// returns the upper bound of the target bucket, so tail estimates err
// conservatively high, never low).
#pragma once

#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>

namespace espice {

class LatencyHistogram {
 public:
  /// Sub-bucket resolution: 2^6 = 64 linear buckets per octave.
  static constexpr unsigned kSubBits = 6;
  static constexpr std::uint64_t kSubCount = std::uint64_t{1} << kSubBits;
  /// Enough groups to cover the full 64-bit value range.
  static constexpr std::size_t kBuckets =
      (64 - kSubBits + 1) * static_cast<std::size_t>(kSubCount);

  void record(std::uint64_t value_ns) {
    ++counts_[bucket_index(value_ns)];
    ++count_;
    sum_ += value_ns;
    if (value_ns > max_) max_ = value_ns;
    if (value_ns < min_) min_ = value_ns;
  }

  void merge(const LatencyHistogram& other) {
    if (other.count_ == 0) return;
    for (std::size_t i = 0; i < kBuckets; ++i) counts_[i] += other.counts_[i];
    count_ += other.count_;
    sum_ += other.sum_;
    if (other.max_ > max_) max_ = other.max_;
    if (other.min_ < min_) min_ = other.min_;
  }

  void reset() { *this = LatencyHistogram{}; }

  std::uint64_t count() const { return count_; }
  std::uint64_t sum() const { return sum_; }
  std::uint64_t max() const { return count_ == 0 ? 0 : max_; }
  std::uint64_t min() const { return count_ == 0 ? 0 : min_; }
  double mean() const {
    return count_ == 0
               ? 0.0
               : static_cast<double>(sum_) / static_cast<double>(count_);
  }

  /// Value at quantile q in [0, 1]: the upper bound of the bucket holding
  /// the ceil(q * count)-th smallest sample (nearest-rank), clamped to the
  /// exact observed min/max.  0 when empty.
  std::uint64_t quantile(double q) const {
    if (count_ == 0) return 0;
    if (q <= 0.0) return min_;
    if (q >= 1.0) return max_;
    // Nearest-rank: smallest rank r with r >= q * count, at least 1.
    const double target = q * static_cast<double>(count_);
    std::uint64_t rank = static_cast<std::uint64_t>(target);
    if (static_cast<double>(rank) < target) ++rank;
    if (rank == 0) rank = 1;
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
      seen += counts_[i];
      if (seen >= rank) {
        const std::uint64_t hi = bucket_upper_bound(i);
        return hi > max_ ? max_ : (hi < min_ ? min_ : hi);
      }
    }
    return max_;  // unreachable: counts_ sums to count_
  }

  /// Bucket of `value_ns`: identity for values below 2^kSubBits, then 64
  /// linear sub-buckets per octave keyed off the MSB position.
  static constexpr std::size_t bucket_index(std::uint64_t value_ns) {
    if (value_ns < kSubCount) return static_cast<std::size_t>(value_ns);
    const unsigned msb = 63u - static_cast<unsigned>(std::countl_zero(value_ns));
    const unsigned shift = msb - kSubBits;
    const auto group = static_cast<std::size_t>(shift + 1);
    const auto sub =
        static_cast<std::size_t>((value_ns >> shift) & (kSubCount - 1));
    return (group << kSubBits) + sub;
  }

  /// Largest value mapping to bucket `index` (inverse of bucket_index).
  static constexpr std::uint64_t bucket_upper_bound(std::size_t index) {
    const std::size_t group = index >> kSubBits;
    const std::uint64_t sub = index & (kSubCount - 1);
    if (group == 0) return sub;
    const unsigned shift = static_cast<unsigned>(group - 1);
    const std::uint64_t lo = (kSubCount + sub) << shift;
    return lo + ((std::uint64_t{1} << shift) - 1);
  }

 private:
  std::array<std::uint64_t, kBuckets> counts_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t max_ = 0;
  std::uint64_t min_ = ~std::uint64_t{0};
};

}  // namespace espice
