// Plain-text table reporting for the benches (each bench prints the rows /
// series of one of the paper's tables or figures).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace espice {

/// Fixed-format double with `precision` decimals.
std::string fmt(double value, int precision = 1);

/// Aligned plain-text table.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);
  void add_row(std::vector<std::string> cells);
  void print(std::ostream& out) const;
  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints "=== title ===" section separators used by the bench binaries.
void print_section(std::ostream& out, const std::string& title);

}  // namespace espice
