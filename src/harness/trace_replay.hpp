// Trace-replay regression harness.
//
// Replays a committed disordered CSV trace (tests/data/trace_stream.csv)
// through a canonical set of event-time engine configurations and digests
// every observable output -- matches, per-query reports, late/revision
// bookkeeping, watermarks, per-shard counters -- into a stable text form.
// The digest is committed next to the trace (trace_golden.txt); any change
// to the event-time pipeline's observable behaviour shows up as a golden
// diff instead of slipping through unnoticed.
//
// The harness runs three sections per replay, one per window span kind
// (count-slide, time-slide, predicate-delimited), so watermark-driven
// time-window close and the count/predicate paths are all pinned by one
// golden.  Only deterministic fields enter the digest: wall-clock rates,
// backpressure and queue-depth gauges are excluded.
//
// Consumers: tools/trace_replay.cpp (CLI: generate / digest / check) and
// tests/regression/trace_replay_test.cpp (ctest gate; regenerate the
// golden with ESPICE_REGEN_GOLDEN=1 after an intended behaviour change).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cep/event.hpp"
#include "cep/event_time.hpp"
#include "runtime/stream_engine.hpp"

namespace espice {

/// Canonical replay configuration.  Defaults are the committed-fixture
/// contract: changing them invalidates tests/data/trace_golden.txt.
struct TraceReplayOptions {
  std::size_t shards = 2;
  std::size_t batch = 64;  ///< push_batch granularity
  /// Reorder-stage bound.  The committed trace carries stragglers
  /// displaced well past this bound, so the late path is exercised.
  std::uint64_t disorder_bound = 32;
  LatePolicy late_policy = LatePolicy::kRevise;
  std::size_t revise_horizon_windows = 16;
  std::uint64_t heartbeat_events = 0;
  /// HashShedder modulus (keep seq-hash % mod == 0); 0 = keep all.
  unsigned drop_mod = 3;
};

/// One replayed section (one window span kind).
struct TraceReplaySection {
  std::string name;
  EngineReport report;
};

struct TraceReplayResult {
  std::uint64_t trace_events = 0;
  std::uint64_t measured_disorder = 0;
  TraceReplayOptions options;
  std::vector<TraceReplaySection> sections;
};

/// Builds the canonical regression trace: an in-order random stream
/// (6 types, jittered timestamps) shuffled within blocks of 24 (disorder
/// < 24, inside the default bound) plus two stragglers displaced 100
/// positions (beyond the bound -> the late path fires).  Deterministic in
/// `seed`; the committed fixture is seed 7, n 600.
std::vector<Event> make_regression_trace(std::uint64_t seed, std::size_t n);

/// Replays `events` through the three canonical sections.
TraceReplayResult replay_trace(const std::vector<Event>& events,
                               const TraceReplayOptions& options = {});

/// Loads the trace from a CSV file (disordered rows allowed) and replays.
/// Throws espice::Error on I/O or parse failure.
TraceReplayResult replay_trace_csv(const std::string& csv_path,
                                   const TraceReplayOptions& options = {});

/// Renders the stable text digest (ends with an FNV-1a line over the
/// digest body, so a one-glance comparison is possible).
std::string replay_digest(const TraceReplayResult& result);

}  // namespace espice
