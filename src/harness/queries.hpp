// Query factories for the paper's four evaluation queries (Section 4.1).
//
//  Q1  seq(STR; any(n, DF1..DFm))      RTLS, time window, opened per striker
//                                      possession event.
//  Q2  seq(MLE; any(n, RE1..REn))      NYSE, time window, opened per leading
//                                      symbol event; candidates = rising
//                                      quotes of any symbol.
//  Q3  seq(RE1; ...; RE20)             NYSE, count window opened per leading
//                                      symbol event; 20 fixed symbols chosen
//                                      as the first leader's followers in lag
//                                      order (rising variant).
//  Q4  seq(RE1; RE1; RE2; RE3; RE2; RE4; RE2; RE5; RE6; RE7; RE2; RE8; RE9;
//      RE10)                           NYSE, count-sliding window (slide 100).
//
// All queries use skip-till-next/any-match; the selection policy is a
// parameter (the paper evaluates first and last).
#pragma once

#include <string>

#include "cep/matcher.hpp"
#include "cep/pattern.hpp"
#include "cep/window.hpp"
#include "datasets/rtls.hpp"
#include "datasets/stock.hpp"
#include "runtime/stream_engine.hpp"

namespace espice {

/// A fully specified query: pattern + windowing + policies.
struct QueryDef {
  std::string name;
  Pattern pattern;
  WindowSpec window;
  SelectionPolicy selection = SelectionPolicy::kFirst;
  ConsumptionPolicy consumption = ConsumptionPolicy::kConsumed;
  /// The paper's default setting: one complex event per window.
  std::size_t max_matches_per_window = 1;

  Matcher make_matcher() const {
    return Matcher(pattern, selection, consumption, max_matches_per_window);
  }
};

QueryDef make_q1(const RtlsGenerator& gen, std::size_t n,
                 double window_seconds = 15.0,
                 SelectionPolicy selection = SelectionPolicy::kFirst);

QueryDef make_q2(const StockGenerator& gen, std::size_t n,
                 double window_seconds = 240.0,
                 SelectionPolicy selection = SelectionPolicy::kFirst);

QueryDef make_q3(const StockGenerator& gen, std::size_t window_events,
                 std::size_t sequence_length = 20,
                 SelectionPolicy selection = SelectionPolicy::kFirst);

QueryDef make_q4(const StockGenerator& gen, std::size_t window_events,
                 std::size_t slide_events = 100,
                 SelectionPolicy selection = SelectionPolicy::kFirst);

/// QueryDef -> engine registration: bridges a harness-level query to the
/// runtime's multi-query API.  Attach a per-query shedding policy through
/// `shedder_factory` (same determinism contract as
/// StreamEngineConfig::shedder_factory) and `predicted_ws` (required for
/// non-count windows when a shedder is present).  Typical use:
///
///   StreamEngine engine(config);
///   engine.add_query(to_engine_query(make_q1(gen, 3)));
///   engine.add_query(to_engine_query(make_q3(gen, 200)));
EngineQuery to_engine_query(
    const QueryDef& query,
    std::function<std::unique_ptr<Shedder>(std::size_t shard)> shedder_factory =
        nullptr,
    double predicted_ws = 0.0);

}  // namespace espice
