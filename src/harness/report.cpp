#include "harness/report.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "common/error.hpp"

namespace espice {

std::string fmt(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  ESPICE_REQUIRE(!headers_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  ESPICE_REQUIRE(cells.size() == headers_.size(),
                 "row width does not match header width");
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& out) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) widths[c] = std::max(widths[c], row[c].size());
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    out << "| ";
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << row[c] << std::string(widths[c] - row[c].size(), ' ')
          << (c + 1 == row.size() ? " |" : " | ");
    }
    out << '\n';
  };
  print_row(headers_);
  out << '|';
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out << std::string(widths[c] + 2, '-') << (c + 1 == headers_.size() ? "|" : "|");
  }
  out << '\n';
  for (const auto& row : rows_) print_row(row);
}

void print_section(std::ostream& out, const std::string& title) {
  out << "\n=== " << title << " ===\n";
}

}  // namespace espice
