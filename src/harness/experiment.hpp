// End-to-end experiment runner: reproduces the paper's evaluation protocol
// (Section 4.2).
//
// Protocol per experiment:
//  1. training phase: the stream prefix is replayed at a sustainable rate
//     (offline here) to build the utility model from detected complex events,
//  2. golden pass: the measurement segment is matched without shedding to
//     obtain ground-truth complex events,
//  3. overload pass: the measurement segment is pushed through the simulated
//     operator at R = rate_factor * th (th = measured max throughput) with
//     the chosen shedder active,
//  4. quality: false negatives / positives of (3) against (2); latency is
//     checked against the bound.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/utility_model.hpp"
#include "harness/queries.hpp"
#include "metrics/latency.hpp"
#include "metrics/quality.hpp"
#include "sim/operator_sim.hpp"

namespace espice {

enum class ShedderKind { kNone, kEspice, kBaseline, kRandom };

const char* shedder_kind_name(ShedderKind kind);

struct ExperimentConfig {
  QueryDef query;
  std::size_t num_types = 0;      ///< M: event-type universe size
  std::size_t train_events = 0;   ///< stream prefix used for model building
  std::size_t measure_events = 0; ///< segment used for golden + overload pass
  double rate_factor = 1.2;       ///< R = rate_factor * th (paper: 1.2 / 1.4)
  double latency_bound = 1.0;     ///< LB seconds (paper default)
  double f = 0.8;                 ///< watermark factor (paper default)
  std::size_t bin_size = 1;       ///< bs
  ShedderKind shedder = ShedderKind::kEspice;
  /// eSPICE boundary handling: false (default) = the paper's literal "drop
  /// everything <= uth" (at least x); true = expected drops of exactly x.
  /// The literal rule wins on quality when the model is accurate -- see
  /// DESIGN.md §5b and bench_ablation_exact_amount.
  bool exact_amount = false;
  OperatorCostModel cost;
  double detector_tick = 0.01;
  /// Override for N (UT positions); 0 = derive from training windows.
  std::size_t n_positions_override = 0;
  /// Override for the predicted window size during shedding; 0 = N.
  double predicted_ws_override = 0.0;
  std::uint64_t seed = 7;
};

struct ExperimentResult {
  QualityReport quality;
  LatencySummary latency;
  std::size_t n_positions = 0;    ///< N used by the model
  double throughput = 0.0;        ///< measured th (events/s)
  double input_rate = 0.0;        ///< R used in the overload pass
  std::uint64_t decisions = 0;    ///< shedder decisions made
  std::uint64_t drops = 0;        ///< (event, window) pairs dropped
  std::uint64_t windows = 0;      ///< windows closed in the overload pass
  bool shedding_active = false;   ///< did the detector ever trigger
  double avg_windows_per_event = 0.0;

  double drop_percent() const {
    return decisions == 0 ? 0.0
                          : 100.0 * static_cast<double>(drops) /
                                static_cast<double>(decisions);
  }
};

/// Builds a utility model for `query` from the first `train_events` of
/// `events` (step 1 of the protocol); exposed separately for tests,
/// examples and benches that need the model itself.
struct TrainedModel {
  std::shared_ptr<const UtilityModel> model;
  double avg_window_size = 0.0;       ///< average offered window size (events)
  double avg_windows_per_event = 0.0; ///< mean window overlap degree
  std::size_t windows = 0;
  std::size_t matches = 0;
};
TrainedModel train_model(const QueryDef& query, std::size_t num_types,
                         std::span<const Event> train_events,
                         std::size_t bin_size,
                         std::size_t n_positions_override = 0);

/// Runs the full protocol on `events` (must hold at least train_events +
/// measure_events entries).  Pass `pretrained` to skip step 1 when sweeping
/// rate or shedder kind with an unchanged query/bin configuration -- the
/// caller is responsible for the pretrained model matching the config.
ExperimentResult run_experiment(const ExperimentConfig& config,
                                std::span<const Event> events,
                                const TrainedModel* pretrained = nullptr);

}  // namespace espice
