#include "harness/queries.hpp"

#include "common/error.hpp"

namespace espice {

QueryDef make_q1(const RtlsGenerator& gen, std::size_t n, double window_seconds,
                 SelectionPolicy selection) {
  QueryDef q;
  q.name = "Q1(n=" + std::to_string(n) + ")";
  q.selection = selection;

  TypeSet strikers;
  for (EventTypeId t : gen.striker_types()) strikers.insert(t);
  TypeSet defenders;
  for (EventTypeId t : gen.defender_types()) defenders.insert(t);

  // Possession events carry value > 0; defend events carry value > 0.
  ElementSpec trigger = element("STR", strikers, DirectionFilter::kRising);
  q.pattern = make_trigger_any(trigger, defenders, n, DirectionFilter::kRising,
                               /*distinct_types=*/true);

  q.window.span_kind = WindowSpan::kTime;
  q.window.span_seconds = window_seconds;
  q.window.open_kind = WindowOpen::kPredicate;
  q.window.opener = element("STR", strikers, DirectionFilter::kRising);
  q.window.validate();
  return q;
}

QueryDef make_q2(const StockGenerator& gen, std::size_t n, double window_seconds,
                 SelectionPolicy selection) {
  QueryDef q;
  q.name = "Q2(n=" + std::to_string(n) + ")";
  q.selection = selection;

  TypeSet leaders;
  for (EventTypeId t : gen.leaders()) leaders.insert(t);

  // Trigger: a rising quote of a leading symbol; candidates: rising quotes
  // of *any* symbol (the empty TypeSet means "any type").
  ElementSpec trigger = element("MLE", leaders, DirectionFilter::kRising);
  q.pattern = make_trigger_any(trigger, TypeSet{}, n, DirectionFilter::kRising,
                               /*distinct_types=*/true);

  q.window.span_kind = WindowSpan::kTime;
  q.window.span_seconds = window_seconds;
  q.window.open_kind = WindowOpen::kPredicate;
  // A window opens for every leading-symbol event regardless of direction.
  q.window.opener = element("MLE", leaders, DirectionFilter::kAny);
  q.window.validate();
  return q;
}

QueryDef make_q3(const StockGenerator& gen, std::size_t window_events,
                 std::size_t sequence_length, SelectionPolicy selection) {
  QueryDef q;
  q.name = "Q3(ws=" + std::to_string(window_events) + ")";
  q.selection = selection;

  // The "20 certain stock symbols": followers of the first leader whose
  // reaction lags are evenly spread, so their rising quotes tend to occur in
  // lag order within a window.
  const EventTypeId lead = gen.leaders().front();
  const auto symbols = gen.sequence_symbols(lead, sequence_length);
  std::vector<ElementSpec> elements_seq;
  elements_seq.reserve(symbols.size());
  for (std::size_t i = 0; i < symbols.size(); ++i) {
    elements_seq.push_back(element("RE" + std::to_string(i + 1),
                                   TypeSet{symbols[i]},
                                   DirectionFilter::kRising));
  }
  q.pattern = make_sequence(std::move(elements_seq));

  TypeSet leaders;
  for (EventTypeId t : gen.leaders()) leaders.insert(t);
  q.window.span_kind = WindowSpan::kCount;
  q.window.span_events = window_events;
  q.window.open_kind = WindowOpen::kPredicate;
  q.window.opener = element("MLE", leaders, DirectionFilter::kAny);
  q.window.validate();
  return q;
}

QueryDef make_q4(const StockGenerator& gen, std::size_t window_events,
                 std::size_t slide_events, SelectionPolicy selection) {
  QueryDef q;
  q.name = "Q4(ws=" + std::to_string(window_events) + ")";
  q.selection = selection;

  // Paper's repetition layout over 10 distinct symbols:
  // seq(RE1; RE1; RE2; RE3; RE2; RE4; RE2; RE5; RE6; RE7; RE2; RE8; RE9; RE10)
  static constexpr std::size_t kLayout[] = {1, 1, 2, 3, 2, 4, 2,
                                            5, 6, 7, 2, 8, 9, 10};
  // Hot (multi-quote) followers: repetition patterns need symbols that tick
  // several times per window.
  const EventTypeId lead = gen.leaders()[1 % gen.leaders().size()];
  const auto symbols = gen.repetition_symbols(lead, 10);
  std::vector<ElementSpec> elements_seq;
  for (std::size_t idx : kLayout) {
    elements_seq.push_back(element("RE" + std::to_string(idx),
                                   TypeSet{symbols[idx - 1]},
                                   DirectionFilter::kRising));
  }
  q.pattern = make_sequence(std::move(elements_seq));

  q.window.span_kind = WindowSpan::kCount;
  q.window.span_events = window_events;
  q.window.open_kind = WindowOpen::kCountSlide;
  q.window.slide_events = slide_events;
  q.window.validate();
  return q;
}

EngineQuery to_engine_query(
    const QueryDef& query,
    std::function<std::unique_ptr<Shedder>(std::size_t shard)> shedder_factory,
    double predicted_ws) {
  EngineQuery q;
  q.name = query.name;
  q.query.pattern = query.pattern;
  q.query.window = query.window;
  q.query.selection = query.selection;
  q.query.consumption = query.consumption;
  q.query.max_matches_per_window = query.max_matches_per_window;
  q.shedder_factory = std::move(shedder_factory);
  q.predicted_ws = predicted_ws;
  return q;
}

}  // namespace espice
