#include "harness/experiment.hpp"

#include <algorithm>
#include <cmath>

#include "core/baseline_shedder.hpp"
#include "core/espice_shedder.hpp"
#include "core/model_builder.hpp"
#include "core/random_shedder.hpp"

namespace espice {

const char* shedder_kind_name(ShedderKind kind) {
  switch (kind) {
    case ShedderKind::kNone:
      return "none";
    case ShedderKind::kEspice:
      return "eSPICE";
    case ShedderKind::kBaseline:
      return "BL";
    case ShedderKind::kRandom:
      return "random";
  }
  return "?";
}

TrainedModel train_model(const QueryDef& query, std::size_t num_types,
                         std::span<const Event> train_events,
                         std::size_t bin_size,
                         std::size_t n_positions_override) {
  ESPICE_REQUIRE(!train_events.empty(), "training segment is empty");
  const Matcher matcher = query.make_matcher();

  // Pass 1: determine N (average offered window size) and the window overlap
  // degree.  For count-based windows N is known from the spec.
  TrainedModel trained;
  std::size_t n_positions = n_positions_override;
  double size_sum = 0.0;
  std::size_t windows = 0;
  run_pipeline(train_events, query.window, matcher, nullptr, 0.0,
               [&](const WindowView& w, const std::vector<ComplexEvent>&) {
                 size_sum += static_cast<double>(w.size());
                 ++windows;
               });
  ESPICE_REQUIRE(windows > 0, "training segment closed no windows");
  trained.avg_window_size = size_sum / static_cast<double>(windows);
  trained.avg_windows_per_event =
      size_sum / static_cast<double>(train_events.size());
  if (n_positions == 0) {
    if (query.window.span_kind == WindowSpan::kCount) {
      n_positions = query.window.span_events;
    } else {
      n_positions = static_cast<std::size_t>(
          std::max<long>(1, std::lround(trained.avg_window_size)));
    }
  }

  // Pass 2: collect the model statistics.
  ModelBuilderConfig mb_config;
  mb_config.num_types = num_types;
  mb_config.n_positions = n_positions;
  mb_config.bin_size = std::min(bin_size, n_positions);
  ModelBuilder builder(mb_config);
  run_pipeline(train_events, query.window, matcher, nullptr, 0.0,
               [&](const WindowView& w, const std::vector<ComplexEvent>& matches) {
                 builder.observe_window(w);
                 for (const auto& m : matches) builder.observe_match(m, w.size());
               });
  trained.windows = builder.windows_observed();
  trained.matches = builder.matches_observed();
  trained.model = builder.build();
  return trained;
}

namespace {

std::unique_ptr<Shedder> make_shedder(const ExperimentConfig& config,
                                      const TrainedModel& trained) {
  const auto& model = *trained.model;
  switch (config.shedder) {
    case ShedderKind::kNone:
      return std::make_unique<NullShedder>();
    case ShedderKind::kEspice:
      return std::make_unique<EspiceShedder>(trained.model,
                                             config.exact_amount);
    case ShedderKind::kBaseline: {
      // Expected events of each type per window, from the position shares.
      std::vector<double> freq(model.num_types(), 0.0);
      for (std::size_t t = 0; t < model.num_types(); ++t) {
        for (std::size_t c = 0; c < model.cols(); ++c) {
          freq[t] += model.share_cell(static_cast<EventTypeId>(t), c);
        }
      }
      return std::make_unique<BaselineShedder>(config.query.pattern,
                                               std::move(freq),
                                               model.n_positions(), config.seed);
    }
    case ShedderKind::kRandom:
      return std::make_unique<RandomShedder>(model.n_positions(), config.seed);
  }
  ESPICE_ASSERT(false, "unknown shedder kind");
  return nullptr;
}

}  // namespace

ExperimentResult run_experiment(const ExperimentConfig& config,
                                std::span<const Event> events,
                                const TrainedModel* pretrained) {
  ESPICE_REQUIRE(config.train_events > 0 && config.measure_events > 0,
                 "train/measure segment sizes must be positive");
  ESPICE_REQUIRE(events.size() >= config.train_events + config.measure_events,
                 "stream shorter than train + measure segments");
  ESPICE_REQUIRE(config.num_types > 0, "num_types must be set");

  const auto train = events.subspan(0, config.train_events);
  const auto measure = events.subspan(config.train_events, config.measure_events);
  const Matcher matcher = config.query.make_matcher();

  // --- 1. Train the utility model (or reuse a caller-provided one) --------
  const TrainedModel trained =
      pretrained != nullptr
          ? *pretrained
          : train_model(config.query, config.num_types, train,
                        config.bin_size, config.n_positions_override);

  ExperimentResult result;
  result.n_positions = trained.model->n_positions();
  result.avg_windows_per_event = trained.avg_windows_per_event;

  // --- 2. Golden pass ------------------------------------------------------
  std::vector<ComplexEvent> golden;
  run_pipeline(measure, config.query.window, matcher, nullptr, 0.0,
               [&](const WindowView&, const std::vector<ComplexEvent>& matches) {
                 golden.insert(golden.end(), matches.begin(), matches.end());
               });

  // --- 3. Overload pass ----------------------------------------------------
  const double th =
      1.0 / (config.cost.base_cost +
             config.cost.per_window_cost * trained.avg_windows_per_event);
  result.throughput = th;
  result.input_rate = config.rate_factor * th;

  auto shedder = make_shedder(config, trained);

  SimConfig sim_config;
  sim_config.window = config.query.window;
  sim_config.cost = config.cost;
  sim_config.detector.latency_bound = config.latency_bound;
  sim_config.detector.f = config.f;
  sim_config.detector.window_size_events = trained.model->n_positions();
  sim_config.detector.tick_period = config.detector_tick;
  sim_config.predicted_ws =
      config.predicted_ws_override > 0.0
          ? config.predicted_ws_override
          : static_cast<double>(trained.model->n_positions());

  OperatorSimulator sim(sim_config, matcher, *shedder);
  SimResult sim_result = sim.run(measure, result.input_rate);

  // --- 4. Quality + latency -------------------------------------------------
  result.quality = compare_quality(golden, sim_result.matches);
  result.latency =
      summarize_latency(sim_result.latencies, config.latency_bound);
  result.decisions = shedder->decisions();
  result.drops = shedder->drops();
  result.windows = sim_result.windows_closed;
  result.shedding_active = sim_result.shedding_ever_active;
  return result;
}

}  // namespace espice
