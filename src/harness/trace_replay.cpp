#include "harness/trace_replay.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <memory>
#include <span>
#include <sstream>

#include "common/rng.hpp"
#include "datasets/csv.hpp"

namespace espice {
namespace {

constexpr EventTypeId kNumTypes = 6;
constexpr EventTypeId kOpenerType = 1;
constexpr EventTypeId kCloserType = 2;
constexpr double kPredictedWs = 24.0;

/// Deterministic, stateless shedder (pure hash of seq x position x salt):
/// identical decisions regardless of arrival order once the reorder stage
/// re-sequences the stream.  Mirrors the property-suite idiom.
class TraceHashShedder final : public Shedder {
 public:
  explicit TraceHashShedder(unsigned mod) : mod_(mod) {}

  bool should_drop(const Event& e, std::uint32_t position, double) override {
    const bool drop =
        mod_ != 0 &&
        ((e.seq * 2654435761ULL) ^ (position * 40503ULL)) % mod_ != 0;
    count_decision(drop);
    return drop;
  }
  void on_command(const DropCommand&) override {}
  const char* name() const override { return "trace-hash"; }

 private:
  unsigned mod_;
};

WindowSpec section_spec(const std::string& name) {
  WindowSpec spec;
  if (name == "count_slide") {
    spec.span_kind = WindowSpan::kCount;
    spec.span_events = 24;
    spec.open_kind = WindowOpen::kCountSlide;
    spec.slide_events = 5;
  } else if (name == "time_slide") {
    spec.span_kind = WindowSpan::kTime;
    spec.span_seconds = 7.5;
    spec.open_kind = WindowOpen::kCountSlide;
    spec.slide_events = 5;
  } else {  // predicate open + predicate close
    spec.span_kind = WindowSpan::kPredicate;
    spec.span_events = 40;  // safety cap
    spec.closer =
        element("close", TypeSet{kCloserType}, DirectionFilter::kAny);
    spec.open_kind = WindowOpen::kPredicate;
    spec.opener =
        element("open", TypeSet{kOpenerType}, DirectionFilter::kAny);
  }
  return spec;
}

EngineReport run_section(const std::string& name,
                         const std::vector<Event>& events,
                         const TraceReplayOptions& o) {
  StreamEngineConfig config;
  config.shards = o.shards;
  config.ring_capacity = 256;
  config.query.pattern =
      make_sequence({element("up", TypeSet{}, DirectionFilter::kRising),
                     element("down", TypeSet{}, DirectionFilter::kFalling)});
  config.query.window = section_spec(name);
  config.predicted_ws = kPredictedWs;
  if (o.drop_mod != 0) {
    const unsigned mod = o.drop_mod;
    config.shedder_factory = [mod](std::size_t) {
      return std::make_unique<TraceHashShedder>(mod);
    };
  }
  EventTimeConfig et;
  et.disorder_bound = o.disorder_bound;
  et.heartbeat_events = o.heartbeat_events;
  et.late_policy = o.late_policy;
  et.revise_horizon_windows = o.revise_horizon_windows;
  config.event_time = et;

  StreamEngine engine(std::move(config));
  const std::span<const Event> all(events);
  for (std::size_t i = 0; i < all.size(); i += o.batch) {
    engine.push_batch(all.subspan(i, std::min(o.batch, all.size() - i)));
  }
  return engine.finish();
}

// --- digest rendering -------------------------------------------------------

/// Shortest round-trip decimal for a double: bit changes surface as text.
std::string fmt_f(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

void put_match(std::ostringstream& out, const char* tag, std::size_t i,
               const ComplexEvent& m) {
  out << "  " << tag << "[" << i << "]: window=" << m.window
      << " ts=" << fmt_f(m.detection_ts);
  for (const Constituent& c : m.constituents) {
    out << " (" << c.element << "@p" << c.position << "#s" << c.event.seq
        << " v=" << fmt_f(c.event.value) << ")";
  }
  out << "\n";
}

void put_section(std::ostringstream& out, const TraceReplaySection& s) {
  const EngineReport& r = s.report;
  out << "section " << s.name << "\n";
  out << "  totals: events=" << r.events << " matches=" << r.matches.size()
      << " windows_closed=" << r.total_windows_closed()
      << " shed_drops=" << r.total_shed_drops() << "\n";
  out << "  event_time: punctuations=" << r.punctuations
      << " late=" << r.late_events << " dropped=" << r.late_dropped
      << " side_output=" << r.late_side_output
      << " revisions=" << r.revisions << "\n";
  out << "  low_watermark: valid=" << (r.low_watermark_valid ? 1 : 0)
      << " seq=" << r.low_watermark_seq << "\n";
  for (std::size_t i = 0; i < r.matches.size(); ++i) {
    put_match(out, "match", i, r.matches[i]);
  }
  for (std::size_t qi = 0; qi < r.queries.size(); ++qi) {
    const QueryReport& q = r.queries[qi];
    out << "  query[" << qi << "] \"" << q.name
        << "\": matches=" << q.matches.size()
        << " memberships=" << q.memberships
        << " kept=" << q.memberships_kept
        << " decisions=" << q.shed_decisions << " drops=" << q.shed_drops
        << "\n";
    for (std::size_t ri = 0; ri < q.revisions.size(); ++ri) {
      const RevisionRecord& rev = q.revisions[ri];
      out << "  revision[" << qi << "." << ri << "]: late=" << rev.late_seq
          << " window=" << rev.window << " tag=" << rev.revision
          << " matches=" << rev.matches.size() << "\n";
      for (std::size_t mi = 0; mi < rev.matches.size(); ++mi) {
        out << "  ";
        put_match(out, "rematch", mi, rev.matches[mi]);
      }
    }
  }
  for (std::size_t si = 0; si < r.side_outputs.size(); ++si) {
    const SideOutputRecord& so = r.side_outputs[si];
    out << "  side_output[" << si << "]: seq=" << so.event.seq
        << " type=" << so.event.type << " ts=" << fmt_f(so.event.ts)
        << " wm=" << so.watermark_seq << " windows=[";
    for (std::size_t wi = 0; wi < so.windows.size(); ++wi) {
      out << (wi != 0 ? " " : "") << so.windows[wi];
    }
    out << "]\n";
  }
  // Per-shard deterministic counters only (no queue/backpressure gauges:
  // those depend on thread timing, not on the stream).
  for (const ShardStats& sh : r.shards) {
    out << "  shard[" << sh.shard << "]: events=" << sh.events
        << " memberships=" << sh.memberships
        << " kept=" << sh.memberships_kept
        << " windows_closed=" << sh.windows_closed
        << " matches=" << sh.matches << " late=" << sh.late_events
        << " dropped=" << sh.late_dropped << " side=" << sh.late_side_output
        << " revisions=" << sh.revisions
        << " wm=" << (sh.watermark_valid ? 1 : 0) << ":" << sh.watermark_seq
        << " reorder_peak=" << sh.reorder_peak_buffered << "\n";
  }
}

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

std::vector<Event> make_regression_trace(std::uint64_t seed, std::size_t n) {
  Rng rng(seed);
  std::vector<Event> events;
  events.reserve(n);
  double ts = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    Event e;
    e.type = static_cast<EventTypeId>(rng.uniform_int(kNumTypes));
    e.seq = i;
    ts += rng.uniform(0.0, 1.2);
    e.ts = ts;
    e.value = rng.uniform(-2.0, 2.0);
    events.push_back(e);
  }
  // Bounded shuffle: Fisher-Yates within blocks of 24, so no event is
  // displaced across a block boundary (measured disorder < 24).
  constexpr std::size_t kBlock = 24;
  for (std::size_t base = 0; base < events.size(); base += kBlock) {
    const std::size_t end = std::min(base + kBlock, events.size());
    for (std::size_t i = end - 1; i > base; --i) {
      const std::size_t j = base + rng.uniform_int(i - base + 1);
      std::swap(events[i], events[j]);
    }
  }
  // Two stragglers displaced 100 positions: beyond the canonical bound of
  // 32, so the late path (drop / side-output / revise) fires on replay.
  constexpr std::size_t kDisplace = 100;
  for (const std::size_t victim : {n / 3, (2 * n) / 3}) {
    auto it = std::find_if(events.begin(), events.end(),
                           [&](const Event& e) { return e.seq == victim; });
    if (it == events.end()) continue;
    const Event straggler = *it;
    const auto at = static_cast<std::size_t>(it - events.begin());
    events.erase(it);
    const std::size_t dst = std::min(at + kDisplace, events.size());
    events.insert(events.begin() + static_cast<std::ptrdiff_t>(dst),
                  straggler);
  }
  return events;
}

TraceReplayResult replay_trace(const std::vector<Event>& events,
                               const TraceReplayOptions& options) {
  TraceReplayResult result;
  result.trace_events = events.size();
  result.measured_disorder = measure_disorder(events);
  result.options = options;
  for (const char* name : {"count_slide", "time_slide", "predicate"}) {
    TraceReplaySection section;
    section.name = name;
    section.report = run_section(name, events, options);
    result.sections.push_back(std::move(section));
  }
  return result;
}

TraceReplayResult replay_trace_csv(const std::string& csv_path,
                                   const TraceReplayOptions& options) {
  TypeRegistry registry;
  CsvReadOptions read_options;
  read_options.on_bad_row = BadRowPolicy::kFail;
  read_options.require_stream_order = false;  // disordered capture
  const CsvReadResult loaded =
      load_events_csv(csv_path, registry, read_options);
  return replay_trace(loaded.events, options);
}

std::string replay_digest(const TraceReplayResult& result) {
  std::ostringstream out;
  out << "trace-replay digest v1\n";
  out << "trace: events=" << result.trace_events
      << " measured_disorder=" << result.measured_disorder << "\n";
  const TraceReplayOptions& o = result.options;
  out << "options: shards=" << o.shards << " batch=" << o.batch
      << " bound=" << o.disorder_bound
      << " policy=" << static_cast<int>(o.late_policy)
      << " horizon=" << o.revise_horizon_windows
      << " heartbeat=" << o.heartbeat_events << " drop_mod=" << o.drop_mod
      << "\n";
  for (const TraceReplaySection& s : result.sections) {
    put_section(out, s);
  }
  std::string body = out.str();
  char line[32];
  std::snprintf(line, sizeof line, "fnv=%016" PRIx64 "\n", fnv1a(body));
  body += line;
  return body;
}

}  // namespace espice
